// The test-floor service: queue draining, worker-count edge cases,
// per-scenario aggregation, and the floor's headline determinism
// guarantee — a fixed seed yields byte-identical deterministic aggregates
// for 1 worker and N workers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "floor/job_factory.hpp"
#include "floor/job_queue.hpp"
#include "floor/report.hpp"
#include "floor/test_floor.hpp"
#include "util/rng.hpp"

namespace casbus::floor {
namespace {

// --- JobQueue ---------------------------------------------------------------

TEST(JobQueue, FifoOrderAndCloseSemantics) {
  JobQueue queue;  // one shard: strict FIFO
  for (std::size_t i = 0; i < 4; ++i) {
    JobSpec spec;
    spec.id = 100 + i;
    EXPECT_TRUE(queue.push(spec));
  }
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.pushed(), 4u);
  EXPECT_FALSE(queue.closed());
  queue.close();
  EXPECT_TRUE(queue.closed());

  for (std::size_t i = 0; i < 4; ++i) {
    const auto job = queue.pop();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->slot, i);
    EXPECT_EQ(job->spec.id, 100 + i);
  }
  EXPECT_FALSE(queue.pop().has_value());  // drained + closed
  // Push after close is a graceful rejection (streaming producers may
  // race close()), never a crash or an exception.
  EXPECT_FALSE(queue.push(JobSpec{}));
  EXPECT_FALSE(queue.try_push(JobSpec{}));
  EXPECT_EQ(queue.pushed(), 4u);
}

TEST(JobQueue, ConcurrentDrainDeliversEachJobExactlyOnce) {
  constexpr std::size_t kJobs = 64;
  JobQueue queue(/*shards=*/4);
  for (std::size_t i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.seed = i;  // spread cache keys across the shards
    EXPECT_TRUE(queue.push(spec));
  }
  queue.close();

  std::mutex mu;
  std::set<std::size_t> seen;
  std::vector<std::thread> poppers;
  for (std::size_t t = 0; t < 4; ++t) {
    poppers.emplace_back([&queue, &mu, &seen, t] {
      while (const auto job = queue.pop(t)) {
        const std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen.insert(job->slot).second)
            << "slot " << job->slot << " delivered twice";
      }
    });
  }
  for (auto& t : poppers) t.join();
  EXPECT_EQ(seen.size(), kJobs);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(JobQueue, BoundedCapacityBackpressure) {
  JobQueue queue(/*shards=*/2, /*capacity=*/2);
  EXPECT_EQ(queue.capacity(), 2u);
  EXPECT_TRUE(queue.try_push(JobSpec{}));
  EXPECT_TRUE(queue.try_push(JobSpec{}));
  EXPECT_FALSE(queue.try_push(JobSpec{}));  // full: refused, not blocked

  // A blocking push parks until a pop frees a slot, then lands.
  std::thread producer([&queue] {
    JobSpec spec;
    spec.id = 42;
    EXPECT_TRUE(queue.push(spec));
  });
  EXPECT_TRUE(queue.pop(0).has_value());  // releases the producer
  producer.join();
  EXPECT_EQ(queue.pushed(), 3u);

  // The released push really is in the queue.
  std::size_t drained = 0;
  queue.close();
  while (queue.pop(0).has_value()) ++drained;
  EXPECT_EQ(drained, 2u);
}

TEST(JobQueue, CloseUnblocksBlockedProducersAndPoppers) {
  // Phase 1: a producer parked on the capacity bound. With no popper to
  // free a slot, its push can only finish via close() — and must come
  // back as a graceful rejection, not a crash.
  JobQueue full(/*shards=*/2, /*capacity=*/1);
  EXPECT_TRUE(full.push(JobSpec{}));  // queue now full
  std::thread producer([&full] { EXPECT_FALSE(full.push(JobSpec{})); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  full.close();
  producer.join();
  EXPECT_EQ(full.pushed(), 1u);

  // Phase 2: poppers parked on an open-but-empty queue; a concurrent
  // close must wake every one with the shutdown signal.
  JobQueue empty(/*shards=*/2);
  std::atomic<int> null_pops{0};
  std::vector<std::thread> poppers;
  for (std::size_t t = 0; t < 2; ++t)
    poppers.emplace_back([&empty, &null_pops, t] {
      EXPECT_FALSE(empty.pop(t).has_value());
      ++null_pops;
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  empty.close();
  for (auto& t : poppers) t.join();
  EXPECT_EQ(null_pops.load(), 2);
}

TEST(JobQueue, StealingDrainsForeignShards) {
  // All jobs share one recipe, so affinity routes every one to the same
  // shard; a popper with a *different* home shard must steal them all.
  JobQueue queue(/*shards=*/4);
  JobSpec spec;
  for (std::size_t i = 0; i < 8; ++i) {
    spec.id = i;
    EXPECT_TRUE(queue.push(spec));
  }
  queue.close();

  const std::size_t home_shard = spec.cache_key() % 4;
  const std::size_t thief = (home_shard + 1) % 4;
  std::set<std::size_t> seen;
  while (const auto job = queue.pop(thief)) seen.insert(job->slot);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(JobQueue, StealVersusPopRaceDeliversExactlyOnce) {
  // Hammer the pop-vs-steal path: every job lands in one shard (shared
  // recipe -> shared affinity), and four workers — three of them
  // necessarily thieves — race to drain it.
  constexpr std::size_t kJobs = 256;
  JobQueue queue(/*shards=*/4, /*capacity=*/16);
  std::thread producer([&queue] {
    JobSpec spec;  // one recipe -> one shard
    for (std::size_t i = 0; i < kJobs; ++i) {
      spec.id = i;
      EXPECT_TRUE(queue.push(spec));  // backpressure throttles us
    }
    queue.close();
  });

  std::mutex mu;
  std::set<std::size_t> seen;
  std::vector<std::thread> poppers;
  for (std::size_t t = 0; t < 4; ++t) {
    poppers.emplace_back([&queue, &mu, &seen, t] {
      while (const auto job = queue.pop(t)) {
        const std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen.insert(job->slot).second)
            << "slot " << job->slot << " delivered twice";
      }
    });
  }
  producer.join();
  for (auto& t : poppers) t.join();
  EXPECT_EQ(seen.size(), kJobs);
  EXPECT_EQ(queue.size(), 0u);
}

// --- JobFactory -------------------------------------------------------------

TEST(JobFactory, JobsAreDeterministicAndBatchSizeIndependent) {
  const JobFactory factory(1234);
  const auto batch = factory.make_jobs(10);
  ASSERT_EQ(batch.size(), 10u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const JobSpec lone = factory.make_job(i);
    EXPECT_EQ(batch[i].id, i);
    EXPECT_EQ(lone.seed, batch[i].seed);
    EXPECT_EQ(lone.scenario, batch[i].scenario);
    EXPECT_EQ(lone.strategy, batch[i].strategy);
    EXPECT_EQ(lone.cores, batch[i].cores);
    EXPECT_EQ(lone.bus_width, batch[i].bus_width);
  }
  // A different floor seed must describe different jobs.
  const JobFactory other(1235);
  bool any_difference = false;
  for (std::size_t i = 0; i < batch.size(); ++i)
    any_difference |= other.make_job(i).seed != batch[i].seed;
  EXPECT_TRUE(any_difference);
}

TEST(JobFactory, MixWeightsAreRespected) {
  ScenarioMix scan_only;
  scan_only.weight = {1, 0, 0, 0};
  const JobFactory factory(7, scan_only);
  for (const JobSpec& job : factory.make_jobs(16))
    EXPECT_EQ(job.scenario, ScenarioKind::ScanOnly);
}

TEST(JobFactory, ParseScenarioMix) {
  const ScenarioMix mix = parse_scenario_mix("scan:4,bist:2,hier:1,maint:3");
  EXPECT_EQ(mix.weight[static_cast<std::size_t>(ScenarioKind::ScanOnly)], 4u);
  EXPECT_EQ(mix.weight[static_cast<std::size_t>(ScenarioKind::BistJoin)], 2u);
  EXPECT_EQ(
      mix.weight[static_cast<std::size_t>(ScenarioKind::Hierarchical)], 1u);
  EXPECT_EQ(
      mix.weight[static_cast<std::size_t>(ScenarioKind::Maintenance)], 3u);

  const ScenarioMix partial = parse_scenario_mix("hier:2");
  EXPECT_EQ(partial.total(), 2u);

  EXPECT_THROW((void)parse_scenario_mix("warp:1"), PreconditionError);
  EXPECT_THROW((void)parse_scenario_mix("scan"), PreconditionError);
  EXPECT_THROW((void)parse_scenario_mix("scan:x"), PreconditionError);
  EXPECT_THROW((void)parse_scenario_mix("scan:0"), PreconditionError);
  // Oversized weights must hit the documented PreconditionError, not
  // silently truncate through unsigned conversion or leak std::stoul's
  // out_of_range.
  EXPECT_THROW((void)parse_scenario_mix("scan:4294967297"),
               PreconditionError);
  EXPECT_THROW((void)parse_scenario_mix("scan:99999999999999999999"),
               PreconditionError);
}

TEST(JobFactory, ScenarioNamesRoundTrip) {
  for (std::size_t k = 0; k < kScenarioCount; ++k) {
    const auto kind = static_cast<ScenarioKind>(k);
    EXPECT_EQ(scenario_from_name(scenario_name(kind)), kind);
  }
  EXPECT_THROW((void)scenario_from_name("nope"), PreconditionError);
}

TEST(JobFactory, StrategyNamesRoundTrip) {
  using sched::Strategy;
  for (const Strategy s :
       {Strategy::Single, Strategy::PerCore, Strategy::Greedy,
        Strategy::Phased, Strategy::Best, Strategy::Exact,
        Strategy::BranchBound}) {
    EXPECT_EQ(sched::strategy_from_name(sched::strategy_name(s)), s);
  }
  EXPECT_THROW((void)sched::strategy_from_name("random"),
               PreconditionError);
}

// --- run_job ----------------------------------------------------------------

TEST(RunJob, EveryScenarioPassesAndIsDeterministic) {
  for (std::size_t k = 0; k < kScenarioCount; ++k) {
    JobSpec spec;
    spec.id = k;
    spec.scenario = static_cast<ScenarioKind>(k);
    spec.seed = Rng::derive_stream(42, k);
    spec.cores = 3;
    spec.bus_width = 4;

    const JobResult a = run_job(spec);
    const JobResult b = run_job(spec);
    EXPECT_TRUE(a.error.empty()) << scenario_name(spec.scenario) << ": "
                                 << a.error;
    EXPECT_TRUE(a.pass) << scenario_name(spec.scenario);
    EXPECT_GT(a.cores, 0u) << scenario_name(spec.scenario);
    EXPECT_GT(a.sim_cycles, 0u) << scenario_name(spec.scenario);

    // Re-running the same spec (possibly on another thread) must reproduce
    // every deterministic field bit-for-bit.
    EXPECT_EQ(a.pass, b.pass);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.sessions, b.sessions);
    EXPECT_EQ(a.patterns, b.patterns);
    EXPECT_EQ(a.predicted_cycles, b.predicted_cycles);
    EXPECT_EQ(a.measured_cycles, b.measured_cycles);
    EXPECT_EQ(a.sim_cycles, b.sim_cycles);
  }
}

TEST(RunJob, InvalidSpecBecomesErrorResultNotException) {
  JobSpec spec;
  spec.bus_width = 1;  // documented minimum is 2
  const JobResult result = run_job(spec);
  EXPECT_FALSE(result.pass);
  EXPECT_FALSE(result.error.empty());
}

// --- TestFloor --------------------------------------------------------------

TEST(TestFloor, DrainsEveryJobExactlyOnceInInputOrder) {
  const JobFactory factory(99);
  const auto jobs = factory.make_jobs(9);
  const TestFloor floor(FloorConfig{3});
  const FloorReport report = floor.run(jobs);

  ASSERT_EQ(report.results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(report.results[i].id, jobs[i].id);
    EXPECT_EQ(report.results[i].scenario, jobs[i].scenario);
    EXPECT_TRUE(report.results[i].error.empty())
        << "job " << i << ": " << report.results[i].error;
  }
  EXPECT_EQ(report.total.jobs, jobs.size());
  EXPECT_TRUE(report.all_pass());
  EXPECT_GT(report.total.sim_cycles, 0u);
}

TEST(TestFloor, WorkerCountEdgeCases) {
  // 0 = auto-detect, clamped to at least one worker.
  EXPECT_GE(TestFloor(FloorConfig{0}).workers(), 1u);
  EXPECT_EQ(TestFloor(FloorConfig{1}).workers(), 1u);
  EXPECT_EQ(TestFloor(FloorConfig{16}).workers(), 16u);

  const JobFactory factory(5);
  const auto jobs = factory.make_jobs(3);

  // More workers than jobs: the pool is capped at the job count and every
  // job still runs exactly once.
  const FloorReport many = TestFloor(FloorConfig{16}).run(jobs);
  EXPECT_EQ(many.total.jobs, 3u);
  EXPECT_TRUE(many.all_pass());

  // An empty batch completes without spawning workers.
  const FloorReport empty = TestFloor(FloorConfig{4}).run({});
  EXPECT_EQ(empty.total.jobs, 0u);
  EXPECT_TRUE(empty.results.empty());
}

TEST(TestFloor, PerScenarioAggregationIsExact) {
  // One single-scenario batch per kind; the scenario bucket must hold the
  // whole batch and every other bucket must stay empty.
  for (std::size_t k = 0; k < kScenarioCount; ++k) {
    ScenarioMix mix;
    mix.weight.fill(0);
    mix.weight[k] = 1;
    const JobFactory factory(11 + k, mix);
    const FloorReport report =
        TestFloor(FloorConfig{2}).run(factory.make_jobs(4));

    EXPECT_EQ(report.scenario[k].jobs, 4u);
    EXPECT_EQ(report.scenario[k].passed, 4u);
    for (std::size_t other = 0; other < kScenarioCount; ++other) {
      if (other != k) {
        EXPECT_EQ(report.scenario[other].jobs, 0u);
      }
    }

    // Totals are the sum of the scenario buckets.
    EXPECT_EQ(report.total.jobs, 4u);
    EXPECT_EQ(report.total.sim_cycles, report.scenario[k].sim_cycles);
  }
}

TEST(TestFloor, ErroredJobIsIsolatedFromTheRest) {
  const JobFactory factory(21);
  auto jobs = factory.make_jobs(4);
  jobs[1].bus_width = 1;  // forces a precondition error inside the worker
  const FloorReport report = TestFloor(FloorConfig{2}).run(jobs);

  EXPECT_FALSE(report.results[1].error.empty());
  EXPECT_EQ(report.total.errored, 1u);
  EXPECT_EQ(report.total.passed, 3u);
  EXPECT_FALSE(report.all_pass());
}

TEST(TestFloor, DeterministicAggregatesAcrossWorkerCounts) {
  // The headline guarantee: byte-identical deterministic summaries for
  // 1 worker and N workers on the same seed (see test_floor.hpp).
  const JobFactory factory(20260729);
  const auto jobs = factory.make_jobs(8);

  const FloorReport serial = TestFloor(FloorConfig{1}).run(jobs);
  const FloorReport parallel = TestFloor(FloorConfig{4}).run(jobs);

  EXPECT_EQ(serial.deterministic_summary(), parallel.deterministic_summary());
  EXPECT_EQ(serial.total.sim_cycles, parallel.total.sim_cycles);
  EXPECT_EQ(serial.total.passed, parallel.total.passed);
  // And the summary is genuinely seed-sensitive.
  const FloorReport other =
      TestFloor(FloorConfig{1}).run(JobFactory(20260730).make_jobs(8));
  EXPECT_NE(serial.deterministic_summary(), other.deterministic_summary());
}

}  // namespace
}  // namespace casbus::floor
