// The exhaustive scheduler: optimality sanity, pruning soundness, and
// heuristic-gap bounds.

#include <functional>

#include <gtest/gtest.h>

#include "sched/exact.hpp"
#include "sched/lower_bound.hpp"
#include "util/rng.hpp"

namespace casbus::sched {
namespace {

std::vector<CoreTestSpec> random_instance(Rng& rng, std::size_t min_cores,
                                          std::size_t extra) {
  std::vector<CoreTestSpec> cores;
  const std::size_t n = min_cores + rng.below(extra);
  for (std::size_t i = 0; i < n; ++i) {
    CoreTestSpec c;
    c.name = "c" + std::to_string(i);
    const std::size_t chains = 1 + rng.below(3);
    for (std::size_t k = 0; k < chains; ++k)
      c.chains.push_back(10 + rng.below(120));
    c.patterns = 10 + rng.below(200);
    cores.push_back(std::move(c));
  }
  return cores;
}

/// Unpruned reference: minimum over every scan partition, priced with the
/// same shared evaluator the search uses.
std::uint64_t brute_force_optimum(const SessionScheduler& s) {
  std::vector<std::size_t> scan, bist;
  for (std::size_t i = 0; i < s.cores().size(); ++i) {
    if (s.cores()[i].is_scan())
      scan.push_back(i);
    else
      bist.push_back(i);
  }
  std::uint64_t best = UINT64_MAX;
  std::vector<std::vector<std::size_t>> groups;
  const std::function<void(std::size_t)> recurse = [&](std::size_t idx) {
    if (idx == scan.size()) {
      best = std::min(best, price_scan_partition(s, groups, bist));
      return;
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
      groups[g].push_back(scan[idx]);
      recurse(idx + 1);
      groups[g].pop_back();
    }
    groups.push_back({scan[idx]});
    recurse(idx + 1);
    groups.pop_back();
  };
  recurse(0);
  return best;
}

TEST(ExactScheduler, NeverWorseThanAnyHeuristic) {
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<CoreTestSpec> cores = random_instance(rng, 3, 4);
    if (rng.coin()) cores.push_back(CoreTestSpec{"b", {}, 0, 500});

    const auto width = static_cast<unsigned>(2 + rng.below(5));
    SessionScheduler s(cores, width);
    const ExactResult exact = exact_schedule(s);

    EXPECT_LE(exact.schedule.total_cycles,
              s.single_session().total_cycles)
        << "trial " << trial;
    EXPECT_LE(exact.schedule.total_cycles,
              s.per_core_sessions().total_cycles)
        << "trial " << trial;
    EXPECT_LE(exact.schedule.total_cycles, s.greedy().total_cycles)
        << "trial " << trial;
  }
}

TEST(ExactScheduler, PruningPreservesOptimality) {
  // The lower-bound pruning must never cut the optimum: compare against a
  // full unpruned enumeration on random instances.
  Rng rng(41);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<CoreTestSpec> cores = random_instance(rng, 3, 4);
    if (rng.coin()) cores.push_back(CoreTestSpec{"b", {}, 0, 2000});
    SessionScheduler s(cores, static_cast<unsigned>(2 + rng.below(4)));
    const ExactResult exact = exact_schedule(s);
    EXPECT_EQ(exact.schedule.total_cycles, brute_force_optimum(s))
        << "trial " << trial;
  }
}

TEST(ExactScheduler, GreedyStaysWithinModestGapOnSmallInstances) {
  // Quality check for the polynomial heuristic: on random small
  // instances, the grouped-partition optimum is at most ~25% better.
  Rng rng(23);
  double worst_gap = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<CoreTestSpec> cores;
    const std::size_t n = 4 + rng.below(3);
    for (std::size_t i = 0; i < n; ++i) {
      CoreTestSpec c;
      c.name = "c" + std::to_string(i);
      c.chains.push_back(20 + rng.below(100));
      c.patterns = 20 + rng.below(150);
      cores.push_back(std::move(c));
    }
    SessionScheduler s(cores, 3);
    const ExactResult exact = exact_schedule(s);
    const double gap =
        static_cast<double>(s.greedy().total_cycles) /
            static_cast<double>(exact.schedule.total_cycles) -
        1.0;
    worst_gap = std::max(worst_gap, gap);
  }
  EXPECT_LT(worst_gap, 0.25) << "greedy strayed too far from optimal";
}

TEST(ExactScheduler, HeuristicGapComputedInLibrary) {
  Rng rng(29);
  std::vector<CoreTestSpec> cores = random_instance(rng, 4, 3);
  SessionScheduler s(cores, 3);
  const ExactResult exact = exact_schedule(s);
  const double expected =
      static_cast<double>(s.best().total_cycles) /
          static_cast<double>(exact.schedule.total_cycles) -
      1.0;
  EXPECT_DOUBLE_EQ(exact.heuristic_gap, expected);
  // best() can beat the partition optimum via rail emulation, so the gap
  // may be negative — but never below -1.
  EXPECT_GT(exact.heuristic_gap, -1.0);
}

TEST(ExactScheduler, SingleCoreIsTrivial) {
  std::vector<CoreTestSpec> cores = {CoreTestSpec{"only", {30, 30}, 50, 0}};
  SessionScheduler s(cores, 4);
  const ExactResult exact = exact_schedule(s);
  // The greedy incumbent already is the only partition; the search may
  // prune everything.
  EXPECT_LE(exact.partitions_tried, 1u);
  EXPECT_EQ(exact.schedule.total_cycles,
            s.per_core_sessions().total_cycles);
}

TEST(ExactScheduler, RefusesOversizedInstances) {
  std::vector<CoreTestSpec> cores;
  for (int i = 0; i < 12; ++i)
    cores.push_back(CoreTestSpec{"c" + std::to_string(i), {10}, 10, 0});
  SessionScheduler s(cores, 4);
  EXPECT_THROW((void)exact_schedule(s, 10), PreconditionError);
}

TEST(ExactScheduler, PruningCutsTheBellSearchSpace) {
  // 4 scan cores -> B(4) = 15 partitions; the bound + greedy incumbent
  // must price at most that many leaves (usually far fewer).
  std::vector<CoreTestSpec> cores;
  for (int i = 0; i < 4; ++i)
    cores.push_back(CoreTestSpec{"c" + std::to_string(i), {10}, 10, 0});
  SessionScheduler s(cores, 4);
  const ExactResult exact = exact_schedule(s);
  EXPECT_LE(exact.partitions_tried, 15u);
  EXPECT_GT(exact.partitions_tried + exact.subtrees_pruned, 0u);
  EXPECT_EQ(exact.schedule.total_cycles, brute_force_optimum(s));
}

TEST(ExactScheduler, PrunedSearchHandlesTenCoresQuickly) {
  // B(10) = 115975 partitions; with the balance bound the search prices a
  // tiny fraction — this is what raised the practical core limit.
  Rng rng(31);
  std::vector<CoreTestSpec> cores;
  for (int i = 0; i < 10; ++i) {
    CoreTestSpec c;
    c.name = "c" + std::to_string(i);
    c.chains.push_back(20 + rng.below(150));
    c.patterns = 20 + rng.below(200);
    cores.push_back(std::move(c));
  }
  SessionScheduler s(cores, 4);
  const ExactResult exact = exact_schedule(s);
  EXPECT_GT(exact.subtrees_pruned, 0u);
  EXPECT_LT(exact.partitions_tried, 115975u);
  EXPECT_LE(exact.schedule.total_cycles, s.greedy().total_cycles);
  EXPECT_GE(exact.schedule.total_cycles,
            schedule_lower_bound(cores, 4, s.reconfig_cost()));
}

}  // namespace
}  // namespace casbus::sched
