// The exhaustive scheduler: optimality sanity and heuristic-gap bounds.

#include <gtest/gtest.h>

#include "sched/exact.hpp"
#include "util/rng.hpp"

namespace casbus::sched {
namespace {

TEST(ExactScheduler, NeverWorseThanAnyHeuristic) {
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<CoreTestSpec> cores;
    const std::size_t n = 3 + rng.below(4);  // 3..6 scan cores
    for (std::size_t i = 0; i < n; ++i) {
      CoreTestSpec c;
      c.name = "c" + std::to_string(i);
      const std::size_t chains = 1 + rng.below(3);
      for (std::size_t k = 0; k < chains; ++k)
        c.chains.push_back(10 + rng.below(120));
      c.patterns = 10 + rng.below(200);
      cores.push_back(std::move(c));
    }
    if (rng.coin()) cores.push_back(CoreTestSpec{"b", {}, 0, 500});

    const auto width = static_cast<unsigned>(2 + rng.below(5));
    SessionScheduler s(cores, width);
    const ExactResult exact = exact_schedule(s);

    EXPECT_LE(exact.schedule.total_cycles,
              s.single_session().total_cycles)
        << "trial " << trial;
    EXPECT_LE(exact.schedule.total_cycles,
              s.per_core_sessions().total_cycles)
        << "trial " << trial;
    EXPECT_LE(exact.schedule.total_cycles, s.greedy().total_cycles)
        << "trial " << trial;
    EXPECT_GT(exact.partitions_tried, 0u);
  }
}

TEST(ExactScheduler, GreedyStaysWithinModestGapOnSmallInstances) {
  // Quality check for the polynomial heuristic: on random small
  // instances, the grouped-partition optimum is at most ~25% better.
  Rng rng(23);
  double worst_gap = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<CoreTestSpec> cores;
    const std::size_t n = 4 + rng.below(3);
    for (std::size_t i = 0; i < n; ++i) {
      CoreTestSpec c;
      c.name = "c" + std::to_string(i);
      c.chains.push_back(20 + rng.below(100));
      c.patterns = 20 + rng.below(150);
      cores.push_back(std::move(c));
    }
    SessionScheduler s(cores, 3);
    const ExactResult exact = exact_schedule(s);
    const double gap =
        static_cast<double>(s.greedy().total_cycles) /
            static_cast<double>(exact.schedule.total_cycles) -
        1.0;
    worst_gap = std::max(worst_gap, gap);
  }
  EXPECT_LT(worst_gap, 0.25) << "greedy strayed too far from optimal";
}

TEST(ExactScheduler, SingleCoreIsTrivial) {
  std::vector<CoreTestSpec> cores = {CoreTestSpec{"only", {30, 30}, 50, 0}};
  SessionScheduler s(cores, 4);
  const ExactResult exact = exact_schedule(s);
  EXPECT_EQ(exact.partitions_tried, 1u);
  EXPECT_EQ(exact.schedule.total_cycles,
            s.per_core_sessions().total_cycles);
}

TEST(ExactScheduler, RefusesOversizedInstances) {
  std::vector<CoreTestSpec> cores;
  for (int i = 0; i < 12; ++i)
    cores.push_back(CoreTestSpec{"c" + std::to_string(i), {10}, 10, 0});
  SessionScheduler s(cores, 4);
  EXPECT_THROW((void)exact_schedule(s, 10), PreconditionError);
}

TEST(ExactScheduler, PartitionCountsAreBellNumbers) {
  // 4 scan cores -> B(4) = 15 partitions.
  std::vector<CoreTestSpec> cores;
  for (int i = 0; i < 4; ++i)
    cores.push_back(CoreTestSpec{"c" + std::to_string(i), {10}, 10, 0});
  SessionScheduler s(cores, 4);
  EXPECT_EQ(exact_schedule(s).partitions_tried, 15u);
}

}  // namespace
}  // namespace casbus::sched
