// The parallel branch-and-bound engine: byte-identical results at any
// thread count in deterministic mode, optimality against exact_schedule
// across every generator profile, admissibility of the partition-model
// bounds (session floor, overflow floor, BIST chunk bound) against an
// exhaustive partition enumeration, and lint-clean parallel schedules.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "explore/branch_bound.hpp"
#include "explore/soc_generator.hpp"
#include "sched/exact.hpp"
#include "sched/lower_bound.hpp"
#include "sched/scheduler.hpp"
#include "verify/schedule_lint.hpp"

namespace casbus::explore {
namespace {

sched::CoreTestSpec scan_core(std::string name, std::size_t chains,
                              std::size_t longest, std::size_t patterns) {
  sched::CoreTestSpec c;
  c.name = std::move(name);
  c.chains.assign(chains, longest);
  c.patterns = patterns;
  return c;
}

sched::CoreTestSpec bist_core(std::string name, std::uint64_t cycles) {
  sched::CoreTestSpec c;
  c.name = std::move(name);
  c.bist_cycles = cycles;
  return c;
}

/// All counters and certificate fields that deterministic mode pins.
struct Fingerprint {
  std::uint64_t best_cost, lower_bound;
  std::uint64_t nodes, leaves, dives, prunes, improvements, rebalances;
  bool optimal;
  std::vector<std::uint64_t> session_cycles;

  static Fingerprint of(const BranchBoundResult& r) {
    Fingerprint f{r.best_cost,     r.lower_bound,
                  r.nodes_expanded, r.leaves_priced,
                  r.dives,          r.prunes,
                  r.incumbent_improvements, r.rebalances,
                  r.optimal,        {}};
    for (const sched::ScheduledSession& s : r.schedule.sessions)
      f.session_cycles.push_back(s.total_cycles());
    return f;
  }

  bool operator==(const Fingerprint&) const = default;
};

// In deterministic mode the shard structure, round schedule, dive points
// and merge order are all independent of the thread count, so *every*
// observable — incumbent schedule, certificate, and all counters — must
// be byte-identical from 1 thread to an oversubscribed 8.
TEST(ParallelBB, DeterministicAcrossThreadCounts) {
  const SocGenerator gen(17);
  for (const std::size_t cores : {30, 60}) {
    const GeneratedSoc soc = gen.generate(cores, SocProfile::Mixed);
    const sched::SessionScheduler s(soc.cores, soc.suggested_width);
    BranchBoundConfig config;
    config.node_budget = 3000;
    config.dive_interval = 64;
    config.max_dives = 32;
    config.threads = 1;
    const Fingerprint base =
        Fingerprint::of(BranchBoundScheduler(s, config).run());
    for (const std::size_t threads : {2, 3, 8}) {
      config.threads = threads;
      const Fingerprint fp =
          Fingerprint::of(BranchBoundScheduler(s, config).run());
      EXPECT_TRUE(fp == base)
          << cores << " cores at " << threads << " threads: best "
          << fp.best_cost << " vs " << base.best_cost << ", lb "
          << fp.lower_bound << " vs " << base.lower_bound << ", nodes "
          << fp.nodes << " vs " << base.nodes;
    }
  }
}

// Ground truth: on paper-sized instances the parallel search must exhaust
// the space and land exactly on the exhaustive optimum, whatever the
// profile shape (scan-heavy stresses the partition tree, BIST-heavy the
// slot accounting, hierarchical the clustered clones).
TEST(ParallelBB, MatchesExactAcrossProfilesAndThreads) {
  for (std::size_t p = 0; p < kProfileCount; ++p) {
    const auto profile = static_cast<SocProfile>(p);
    const GeneratedSoc soc = SocGenerator(5).generate(9, profile);
    const sched::SessionScheduler s(soc.cores, soc.suggested_width);
    const sched::ExactResult exact = sched::exact_schedule(s, 12, false);
    BranchBoundConfig config;
    config.threads = 4;
    const BranchBoundResult bb = BranchBoundScheduler(s, config).run();
    EXPECT_TRUE(bb.optimal) << profile_name(profile);
    EXPECT_EQ(bb.best_cost, exact.schedule.total_cycles)
        << profile_name(profile);
    EXPECT_EQ(bb.best_cost, bb.lower_bound) << profile_name(profile);
  }
}

// The dominance rule (equal-geometry scan cores expand canonically, once)
// is only sound if it never discards every optimal assignment. A
// clone-heavy instance is its worst case: six identical scan cores plus
// riders collapse the search tree by orders of magnitude and the optimum
// must survive.
TEST(ParallelBB, CloneHeavyInstanceStaysExact) {
  std::vector<sched::CoreTestSpec> cores;
  for (int i = 0; i < 6; ++i)
    cores.push_back(scan_core("clone" + std::to_string(i), 2, 40, 25));
  cores.push_back(scan_core("odd", 3, 55, 30));
  cores.push_back(bist_core("eng0", 2500));
  cores.push_back(bist_core("eng1", 900));
  for (const unsigned width : {3u, 4u, 6u}) {
    const sched::SessionScheduler s(cores, width);
    const sched::ExactResult exact = sched::exact_schedule(s, 12, false);
    BranchBoundConfig config;
    config.threads = 2;
    const BranchBoundResult bb = BranchBoundScheduler(s, config).run();
    EXPECT_TRUE(bb.optimal) << "width " << width;
    EXPECT_EQ(bb.best_cost, exact.schedule.total_cycles) << "width "
                                                         << width;
  }
}

/// Enumerates every set partition of [0, n) (restricted growth strings),
/// invoking fn(groups).
template <typename Fn>
void for_each_partition(std::size_t n, Fn&& fn) {
  std::vector<std::size_t> label(n, 0);
  std::vector<std::vector<std::size_t>> groups;
  const auto emit = [&] {
    const std::size_t k =
        n == 0 ? 0 : 1 + *std::max_element(label.begin(), label.end());
    groups.assign(k, {});
    for (std::size_t i = 0; i < n; ++i) groups[label[i]].push_back(i);
    fn(groups);
  };
  // Iterative restricted-growth enumeration.
  while (true) {
    emit();
    std::size_t i = n;
    while (i-- > 1) {
      std::size_t prefix_max = 0;
      for (std::size_t j = 0; j < i; ++j)
        prefix_max = std::max(prefix_max, label[j]);
      if (label[i] <= prefix_max) {
        ++label[i];
        std::fill(label.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  label.end(), 0);
        break;
      }
      label[i] = 0;
    }
    if (std::all_of(label.begin(), label.end(),
                    [](std::size_t v) { return v == 0; }))
      return;
  }
}

// Admissibility of the partition-model bounds that tighten the node bound
// (sched/lower_bound.hpp): for *every* complete scan partition of small
// generated instances, the priced program must respect the session floor,
// the overflow floor and the BIST chunk bound. A single violation means
// the parallel search could prune the optimum.
TEST(ParallelBB, PartitionFloorsAdmissibleByEnumeration) {
  for (const SocProfile profile :
       {SocProfile::Mixed, SocProfile::BistHeavy}) {
    const GeneratedSoc soc = SocGenerator(9).generate(7, profile);
    const sched::SessionScheduler s(soc.cores, soc.suggested_width);
    const unsigned width = soc.suggested_width;

    std::vector<std::size_t> scan_idx;
    std::vector<std::size_t> bist_idx;
    for (std::size_t i = 0; i < soc.cores.size(); ++i)
      (soc.cores[i].is_scan() ? scan_idx : bist_idx).push_back(i);
    if (scan_idx.empty()) continue;  // pure BIST goes through the
                                     // dedicated optimal path

    const std::uint64_t chunk =
        sched::bist_chunk_bound(soc.cores, width);

    for_each_partition(scan_idx.size(), [&](const auto& groups) {
      std::vector<std::vector<std::size_t>> scan_groups;
      for (const auto& g : groups) {
        scan_groups.emplace_back();
        for (const std::size_t i : g)
          scan_groups.back().push_back(scan_idx[i]);
      }
      std::vector<sched::ScheduledSession> sessions;
      const std::uint64_t total = sched::price_scan_partition(
          s, scan_groups, bist_idx, &sessions);

      const std::uint64_t floor_sessions = sched::partition_session_floor(
          scan_groups.size(), bist_idx.size(), width);
      ASSERT_GE(sessions.size(), floor_sessions)
          << profile_name(profile) << ": " << scan_groups.size()
          << " scan groups priced into " << sessions.size()
          << " sessions, floor said >= " << floor_sessions;

      const std::uint64_t overflow = sessions.size() - scan_groups.size();
      ASSERT_GE(overflow,
                sched::partition_overflow_floor(
                    scan_groups.size(), bist_idx.size(), width))
          << profile_name(profile);

      // Each session costs at least its largest BIST engine, so the chunk
      // bound floors the summed session time (total minus reconfig).
      std::uint64_t session_time = 0;
      for (const sched::ScheduledSession& sess : sessions)
        session_time +=
            std::max(sess.scan_cycles, sess.bist_cycles);
      ASSERT_GE(session_time, chunk) << profile_name(profile);
      ASSERT_GE(total, chunk) << profile_name(profile);
    });
  }
}

// Formula edge cases the enumeration cannot reach: degenerate widths and
// empty inputs.
TEST(ParallelBB, PartitionFloorEdgeCases) {
  // No BIST engines: the floor is the group count (>= 1 session always).
  EXPECT_EQ(sched::partition_session_floor(0, 0, 4), 1u);
  EXPECT_EQ(sched::partition_session_floor(3, 0, 4), 3u);
  EXPECT_EQ(sched::partition_overflow_floor(3, 0, 4), 0u);
  // Width 1: no rider slot exists, every engine is a dedicated session.
  EXPECT_EQ(sched::partition_session_floor(2, 5, 1), 7u);
  EXPECT_EQ(sched::partition_overflow_floor(2, 5, 1), 5u);
  // Width 2: one rider per scan session.
  EXPECT_EQ(sched::partition_session_floor(2, 5, 2), 5u);
  EXPECT_EQ(sched::partition_overflow_floor(2, 5, 2), 3u);
  // Wide bus: riders absorb everything, no overflow.
  EXPECT_EQ(sched::partition_session_floor(2, 5, 8), 2u);
  EXPECT_EQ(sched::partition_overflow_floor(2, 5, 8), 0u);

  // Chunk bound: engines {100, 90, 10, 1} at width 3 chunk as
  // {100,90}|{10,1} -> heads 100 + 10.
  const std::vector<sched::CoreTestSpec> cores = {
      bist_core("a", 100), bist_core("b", 90), bist_core("c", 10),
      bist_core("d", 1), scan_core("s", 1, 5, 2)};
  EXPECT_EQ(sched::bist_chunk_bound(cores, 3), 110u);
  // Width 1 degenerates to one engine per chunk: the full sum.
  EXPECT_EQ(sched::bist_chunk_bound(cores, 1), 201u);
  EXPECT_EQ(sched::bist_chunk_bound({scan_core("s", 1, 5, 2)}, 3), 0u);
}

// Every parallel schedule — budget-limited or optimal, any profile — must
// pass the static schedule linter with zero diagnostics, certificate
// coherence (SC006) included.
TEST(ParallelBB, LintCleanSweepOverParallelSchedules) {
  const SocGenerator gen(23);
  for (std::size_t p = 0; p < kProfileCount; ++p) {
    const auto profile = static_cast<SocProfile>(p);
    for (const std::size_t cores : {12, 48}) {
      const GeneratedSoc soc = gen.generate(cores, profile);
      const sched::SessionScheduler s(soc.cores, soc.suggested_width);
      BranchBoundConfig config;
      config.node_budget = 1500;
      config.dive_interval = 32;
      config.threads = 4;
      const BranchBoundResult bb = BranchBoundScheduler(s, config).run();
      const verify::LintReport report = verify::lint_branch_bound(
          bb, soc.cores, soc.suggested_width);
      EXPECT_TRUE(report.clean())
          << profile_name(profile) << " " << cores << " cores:\n"
          << report.to_string();
    }
  }
}

// Free-running mode (deterministic = false) trades reproducibility for
// eager incumbent publication; its results must still be correct — a
// coherent certificate, and the exhaustive optimum when the space fits in
// the budget.
TEST(ParallelBB, FreeModeStillFindsTheOptimum) {
  const GeneratedSoc soc = SocGenerator(3).generate(9, SocProfile::Mixed);
  const sched::SessionScheduler s(soc.cores, soc.suggested_width);
  const sched::ExactResult exact = sched::exact_schedule(s, 12, false);
  BranchBoundConfig config;
  config.threads = 4;
  config.deterministic = false;
  const BranchBoundResult bb = BranchBoundScheduler(s, config).run();
  EXPECT_TRUE(bb.optimal);
  EXPECT_EQ(bb.best_cost, exact.schedule.total_cycles);
  EXPECT_LE(bb.lower_bound, bb.best_cost);
  EXPECT_TRUE(verify::lint_branch_bound(bb, soc.cores,
                                        soc.suggested_width)
                  .clean());
}

// schedule_with plumbing: the sched_threads argument reaches the engine
// and cannot change the deterministic result.
TEST(ParallelBB, ScheduleWithThreadsMatchesSerial) {
  const GeneratedSoc soc = SocGenerator(29).generate(40, SocProfile::Mixed);
  const sched::Schedule serial =
      sched::schedule_with(soc.cores, soc.suggested_width,
                           sched::Strategy::BranchBound);
  sched::ScheduleStats stats;
  const sched::Schedule threaded =
      sched::schedule_with(soc.cores, soc.suggested_width,
                           sched::Strategy::BranchBound, &stats, 4);
  EXPECT_EQ(threaded.total_cycles, serial.total_cycles);
  EXPECT_EQ(threaded.sessions.size(), serial.sessions.size());
  EXPECT_GT(stats.nodes_expanded, 0u);
  EXPECT_GT(stats.leaves_priced, 0u);
}

}  // namespace
}  // namespace casbus::explore
