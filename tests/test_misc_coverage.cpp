// Consolidated edge-path coverage: kernel knobs, bundle errors, table
// separators, netlist validation via RawNetlist, width-explorer with the
// generic CAS implementation, and result aggregation rules.

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"
#include "sched/width_explorer.hpp"
#include "soc/schedule_runner.hpp"
#include "sim/simulation.hpp"
#include "soc/tester.hpp"
#include "util/table.hpp"

namespace casbus {
namespace {

TEST(SimulationKnobs, MaxDeltaCyclesIsConfigurable) {
  sim::Simulation sim;
  EXPECT_EQ(sim.max_delta_cycles(), 1000u);
  sim.set_max_delta_cycles(3);
  EXPECT_EQ(sim.max_delta_cycles(), 3u);
  // An empty simulation settles in one pass.
  sim.settle();
  EXPECT_EQ(sim.last_settle_passes(), 1u);
}

TEST(SimulationKnobs, WireCountTracksCreation) {
  sim::Simulation sim;
  (void)sim.wire("a");
  (void)sim.bundle("b", 5);
  EXPECT_EQ(sim.wire_count(), 6u);
}

TEST(WireBundleErrors, ToUintRejectsUndrivenBits) {
  sim::Simulation sim;
  sim::WireBundle b = sim.bundle("b", 3);  // X at init
  EXPECT_THROW((void)b.to_uint(), PreconditionError);
  b.set_uint(0b101);
  EXPECT_EQ(b.to_uint(), 0b101u);
}

TEST(TableRendering, SeparatorsAndAlignment) {
  Table t({"left", "right"}, {Align::Left, Align::Right});
  t.add_row({"a", "1"});
  t.add_separator();
  t.add_row({"bb", "22"});
  const std::string s = t.to_string();
  // Left column padded right, right column padded left.
  EXPECT_NE(s.find("| a    |"), std::string::npos);
  EXPECT_NE(s.find("|     1 |"), std::string::npos);
  // Separator row drawn between data rows: 2 data rows + separator →
  // 4 total '+--' border lines plus the inner one.
  EXPECT_EQ(t.rows(), 2u);
}

TEST(RawNetlistValidation, RejectsStructuralIllegalities) {
  using namespace netlist;
  // Dangling input pin.
  {
    RawNetlist raw;
    raw.name = "bad";
    raw.n_nets = 2;
    raw.inputs.push_back(Port{"a", 0});
    raw.cells.push_back(Cell{CellKind::Not, {kNoNet, kNoNet, kNoNet}, 1});
    raw.outputs.push_back(Port{"y", 1});
    EXPECT_THROW((void)Netlist::from_raw(std::move(raw)), InvariantError);
  }
  // Two plain drivers on one net.
  {
    RawNetlist raw;
    raw.name = "bad2";
    raw.n_nets = 2;
    raw.inputs.push_back(Port{"a", 0});
    raw.cells.push_back(Cell{CellKind::Not, {0, kNoNet, kNoNet}, 1});
    raw.cells.push_back(Cell{CellKind::Buf, {0, kNoNet, kNoNet}, 1});
    raw.outputs.push_back(Port{"y", 1});
    EXPECT_THROW((void)Netlist::from_raw(std::move(raw)), InvariantError);
  }
  // Extra connected pin beyond the kind's fan-in.
  {
    RawNetlist raw;
    raw.name = "bad3";
    raw.n_nets = 2;
    raw.inputs.push_back(Port{"a", 0});
    raw.cells.push_back(Cell{CellKind::Not, {0, 0, kNoNet}, 1});
    raw.outputs.push_back(Port{"y", 1});
    EXPECT_THROW((void)Netlist::from_raw(std::move(raw)), InvariantError);
  }
}

TEST(NetlistQueries, DriversAndNames) {
  netlist::NetlistBuilder b("q");
  const auto a = b.input("a");
  const auto en1 = b.input("en1");
  const auto en2 = b.input("en2");
  const auto bus = b.tribuf(en1, a);
  b.tribuf(en2, a, bus);
  b.output("y", bus);
  const netlist::Netlist nl = b.take();
  EXPECT_EQ(nl.drivers_of(bus).size(), 2u);
  EXPECT_EQ(nl.net_name(a), "a");
  // Unnamed nets render as n<id>.
  EXPECT_EQ(nl.net_name(bus)[0], 'n');
}

TEST(WidthExplorer, GenericImplementationWorksOnNarrowRange) {
  std::vector<sched::CoreTestSpec> cores = {
      sched::CoreTestSpec{"a", {20, 20}, 30, 0},
      sched::CoreTestSpec{"b", {15}, 20, 0},
  };
  const auto points = sched::explore_widths(
      cores, 2, 4, tam::CasImplementation::Generic);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& pt : points) EXPECT_GT(pt.cas_area_ge, 0.0);
}

TEST(ResultAggregation, AllPassIncludesBistVerdicts) {
  soc::ScanSessionResult r;
  EXPECT_TRUE(r.all_pass());
  r.targets.push_back(soc::ScanTargetResult{});
  EXPECT_TRUE(r.all_pass());
  r.bist_pass.push_back(true);
  EXPECT_TRUE(r.all_pass());
  r.bist_pass.push_back(false);
  EXPECT_FALSE(r.all_pass());
  r.bist_pass.back() = true;
  r.targets[0].mismatches = 1;
  EXPECT_FALSE(r.all_pass());
}

TEST(ResultAggregation, ExtestAndScheduleHelpers) {
  soc::ExtestResult e;
  EXPECT_TRUE(e.all_pass());
  e.failing.push_back(2);
  EXPECT_FALSE(e.all_pass());

  soc::ScheduleRunReport rep;
  rep.predicted_cycles = 100;
  rep.measured_cycles = 105;
  EXPECT_NEAR(rep.deviation(), 0.05, 1e-9);
  rep.measured_cycles = 95;
  EXPECT_NEAR(rep.deviation(), 0.05, 1e-9);
}

}  // namespace
}  // namespace casbus
