// Equivalence suite: generated gate-level CASes must match the behavioral
// model cycle-for-cycle — through configuration sessions, mode changes and
// random data traffic — for both implementation styles, with and without
// the logic optimizer.

#include <gtest/gtest.h>

#include <sstream>

#include "core/cas_behavior.hpp"
#include "core/cas_generator.hpp"
#include "core/config_protocol.hpp"
#include "core/test_bus.hpp"
#include "netlist/emit.hpp"
#include "netlist/gatesim.hpp"
#include "netlist/opt.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace casbus::tam {
namespace {

struct GenCase {
  unsigned n, p;
  CasImplementation impl;
  bool optimize;
};

std::string case_name(const ::testing::TestParamInfo<GenCase>& info) {
  std::ostringstream os;
  os << 'N' << info.param.n << "_P" << info.param.p << '_'
     << (info.param.impl == CasImplementation::Generic ? "generic" : "opt")
     << (info.param.optimize ? "_synth" : "_raw");
  return os.str();
}

/// Drives a behavioral CAS and a generated netlist with identical stimuli
/// and compares every bus/core output every cycle.
class CasEquivalence : public ::testing::TestWithParam<GenCase> {
 protected:
  void SetUp() override {
    const auto prm = GetParam();
    n_ = prm.n;
    p_ = prm.p;
    CasGenOptions opts;
    opts.impl = prm.impl;
    opts.run_optimizer = prm.optimize;
    gen_ = std::make_unique<GeneratedCas>(generate_cas(n_, p_, opts));
    gate_ = std::make_unique<netlist::GateSim>(gen_->netlist);
    gate_->reset();

    chain_ = std::make_unique<CasBusChain>(sim_, n_, "bus");
    cas_ = &chain_->add_cas("dut", p_);
    sim_.reset();
    drive(0, 0, false, false);
  }

  /// Applies one input vector to both models.
  void drive(std::uint64_t e, std::uint64_t i, bool config, bool update) {
    chain_->head().set_uint(e);
    chain_->cas_i(0).set_uint(i);
    chain_->config_wire().set(config);
    chain_->update_wire().set(update);
    for (unsigned w = 0; w < n_; ++w)
      gate_->set_input("e" + std::to_string(w), ((e >> w) & 1ULL) != 0);
    for (unsigned j = 0; j < p_; ++j)
      gate_->set_input("i" + std::to_string(j), ((i >> j) & 1ULL) != 0);
    gate_->set_input("config", config);
    gate_->set_input("update", update);
  }

  /// Settles both models and compares all outputs.
  void check(const std::string& ctx) {
    sim_.settle();
    gate_->eval();
    for (unsigned w = 0; w < n_; ++w) {
      EXPECT_EQ(gate_->output("s" + std::to_string(w)),
                chain_->tail()[w].get())
          << ctx << " wire s" << w;
    }
    for (unsigned j = 0; j < p_; ++j) {
      EXPECT_EQ(gate_->output("o" + std::to_string(j)),
                chain_->cas_o(0)[j].get())
          << ctx << " port o" << j;
    }
  }

  /// One clock edge on both models.
  void tick() {
    sim_.step();
    gate_->tick();
  }

  /// Full configuration session loading \p code into both models.
  void configure(std::uint64_t code) {
    const unsigned k = cas_->isa().k();
    for (unsigned b = k; b-- > 0;) {
      drive(((code >> b) & 1ULL) != 0 ? 1u : 0u, 0, true, false);
      check("config shift");
      tick();
    }
    drive(0, 0, true, true);
    check("update");
    tick();
    drive(0, 0, false, false);
    check("post-config");
  }

  unsigned n_ = 0, p_ = 0;
  sim::Simulation sim_;
  std::unique_ptr<CasBusChain> chain_;
  CasBehavior* cas_ = nullptr;
  std::unique_ptr<GeneratedCas> gen_;
  std::unique_ptr<netlist::GateSim> gate_;
};

TEST_P(CasEquivalence, RandomSessionsMatchCycleForCycle) {
  Rng rng(1234 + n_ * 31 + p_);
  const std::uint64_t m = cas_->isa().m();
  const unsigned k = cas_->isa().k();

  // Round 0 exercises reset state (bypass) before any configuration.
  for (int cycle = 0; cycle < 4; ++cycle) {
    drive(rng.below(1ULL << n_), rng.below(1ULL << p_), false, false);
    check("reset-bypass");
    tick();
  }

  for (int round = 0; round < 8; ++round) {
    // Mix of codes: bypass, config-chain, valid tests, invalid padding.
    std::uint64_t code = 0;
    switch (round % 4) {
      case 0: code = InstructionSet::kBypassCode; break;
      case 1:
        code = InstructionSet::kFirstTestCode + rng.below(m - 2);
        break;
      case 2: {
        const std::uint64_t space = 1ULL << k;
        code = space > m ? m + rng.below(space - m)  // invalid -> bypass
                         : InstructionSet::kBypassCode;
        break;
      }
      default:
        code = InstructionSet::kFirstTestCode + rng.below(m - 2);
        break;
    }
    configure(code);
    EXPECT_EQ(cas_->instruction(), code);

    for (int cycle = 0; cycle < 6; ++cycle) {
      drive(rng.below(1ULL << n_), rng.below(1ULL << p_), false, false);
      check("data round " + std::to_string(round));
      tick();
    }
  }
}

TEST_P(CasEquivalence, GlobalConfigOverridesTestInstruction) {
  // Load a TEST code, then assert the global config wire: both models must
  // fall back to chain mode (Z on core pins, IR tail on s0).
  configure(InstructionSet::kFirstTestCode);
  drive(0b1, 0, true, false);
  check("config-over-test");
  tick();
  check("config-over-test-2");
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CasEquivalence,
    ::testing::Values(
        GenCase{3, 1, CasImplementation::Generic, false},
        GenCase{3, 1, CasImplementation::OptimizedGateLevel, false},
        GenCase{4, 2, CasImplementation::Generic, false},
        GenCase{4, 2, CasImplementation::OptimizedGateLevel, false},
        GenCase{4, 3, CasImplementation::Generic, false},
        GenCase{4, 3, CasImplementation::OptimizedGateLevel, false},
        GenCase{5, 2, CasImplementation::Generic, false},
        GenCase{5, 2, CasImplementation::OptimizedGateLevel, false},
        GenCase{6, 1, CasImplementation::Generic, false},
        GenCase{6, 1, CasImplementation::OptimizedGateLevel, false},
        GenCase{6, 3, CasImplementation::Generic, true},
        GenCase{6, 3, CasImplementation::OptimizedGateLevel, true},
        GenCase{4, 2, CasImplementation::Generic, true},
        GenCase{4, 2, CasImplementation::OptimizedGateLevel, true},
        GenCase{8, 4, CasImplementation::OptimizedGateLevel, true}),
    case_name);

/// Exhaustive sweep: for EVERY instruction code of a small geometry, load
/// it through the real configuration protocol on the gate-level netlist
/// and verify the routing of every wire against the decoded scheme.
class CasExhaustive
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(CasExhaustive, EveryCodeRoutesExactlyAsDecoded) {
  const auto [n, p] = GetParam();
  for (const auto impl : {CasImplementation::Generic,
                          CasImplementation::OptimizedGateLevel}) {
    const GeneratedCas gen = generate_cas(n, p, {impl, true});
    netlist::GateSim sim(gen.netlist);
    sim.reset();

    const auto drive = [&](std::uint64_t e, std::uint64_t i, bool config,
                           bool update) {
      for (unsigned w = 0; w < n; ++w)
        sim.set_input("e" + std::to_string(w), ((e >> w) & 1ULL) != 0);
      for (unsigned j = 0; j < p; ++j)
        sim.set_input("i" + std::to_string(j), ((i >> j) & 1ULL) != 0);
      sim.set_input("config", config);
      sim.set_input("update", update);
      sim.eval();
    };

    for (std::uint64_t code = 0; code < gen.isa.m(); ++code) {
      // Serial configuration, MSB first.
      for (unsigned b = gen.isa.k(); b-- > 0;) {
        drive(((code >> b) & 1ULL) != 0 ? 1 : 0, 0, true, false);
        sim.tick();
      }
      drive(0, 0, true, true);
      sim.tick();

      // Probe with a walking one on e plus alternating i.
      for (unsigned hot = 0; hot < n; ++hot) {
        const std::uint64_t e = 1ULL << hot;
        const std::uint64_t i = 0b0101010101 & ((1ULL << p) - 1);
        drive(e, i, false, false);
        if (gen.isa.is_test(code)) {
          const SwitchScheme scheme = gen.isa.decode(code);
          for (unsigned j = 0; j < p; ++j)
            EXPECT_EQ(sim.output("o" + std::to_string(j)),
                      to_logic(scheme.wire_of_port(j) == hot))
                << "code " << code << " hot " << hot << " port " << j;
          for (unsigned w = 0; w < n; ++w) {
            const auto port = scheme.port_of_wire(w);
            const bool expect = port.has_value()
                                    ? ((i >> *port) & 1ULL) != 0
                                    : w == hot;
            EXPECT_EQ(sim.output("s" + std::to_string(w)),
                      to_logic(expect))
                << "code " << code << " hot " << hot << " wire " << w;
          }
        } else if (InstructionSet::is_config(code)) {
          for (unsigned j = 0; j < p; ++j)
            EXPECT_EQ(sim.output("o" + std::to_string(j)), Logic4::Z);
        } else {  // BYPASS (incl. any invalid padding codes)
          for (unsigned w = 0; w < n; ++w)
            EXPECT_EQ(sim.output("s" + std::to_string(w)),
                      to_logic(w == hot))
                << "bypass code " << code << " wire " << w;
          for (unsigned j = 0; j < p; ++j)
            EXPECT_EQ(sim.output("o" + std::to_string(j)), Logic4::Z);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGeometries, CasExhaustive,
                         ::testing::Values(std::make_pair(3u, 1u),
                                           std::make_pair(4u, 2u),
                                           std::make_pair(4u, 3u),
                                           std::make_pair(5u, 2u)),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param.first) +
                                  "_P" + std::to_string(info.param.second);
                         });

TEST(CasGenerator, DegenerateGeometryWidthOne) {
  // N = 1, P = 1: m = A(1,1) + 2 = 3, k = 2. The single wire either
  // bypasses, chains the IR, or routes to the core.
  const InstructionSet isa(1, 1);
  EXPECT_EQ(isa.m(), 3u);
  EXPECT_EQ(isa.k(), 2u);
  for (const auto impl : {CasImplementation::Generic,
                          CasImplementation::OptimizedGateLevel}) {
    const GeneratedCas gen = generate_cas(1, 1, {impl, true});
    netlist::GateSim sim(gen.netlist);
    sim.reset();
    // Configure TEST (code 2 = 0b10): shift MSB first.
    for (const bool bit : {true, false}) {
      sim.set_input("e0", bit);
      sim.set_input("i0", false);
      sim.set_input("config", true);
      sim.set_input("update", false);
      sim.eval();
      sim.tick();
    }
    sim.set_input("update", true);
    sim.eval();
    sim.tick();
    sim.set_input("config", false);
    sim.set_input("update", false);
    sim.set_input("e0", true);
    sim.set_input("i0", false);
    sim.eval();
    EXPECT_EQ(sim.output("o0"), Logic4::One);
    EXPECT_EQ(sim.output("s0"), Logic4::Zero);  // return path = i0
  }
}

TEST(CasGenerator, FullWidthPEqualsN) {
  // P = N: every wire claimed in TEST mode; m = N! + 2.
  const GeneratedCas gen =
      generate_cas(3, 3, {CasImplementation::OptimizedGateLevel, true});
  EXPECT_EQ(gen.isa.m(), 8u);  // 3! + 2
  netlist::GateSim sim(gen.netlist);
  sim.reset();
  // Behavioral cross-check through the shared equivalence helper is done
  // in the parameterized suite; here just confirm structure is simulable.
  for (const auto& port : gen.netlist.inputs())
    sim.set_input(port.name, false);
  sim.eval();
  sim.tick();
  SUCCEED();
}

TEST(CasGenerator, PortNamingContract) {
  const GeneratedCas g = generate_cas(4, 2);
  std::vector<std::string> in_names, out_names;
  for (const auto& p : g.netlist.inputs()) in_names.push_back(p.name);
  for (const auto& p : g.netlist.outputs()) out_names.push_back(p.name);
  const std::vector<std::string> expect_in = {"e0", "e1", "e2", "e3",
                                              "i0", "i1", "config",
                                              "update"};
  const std::vector<std::string> expect_out = {"o0", "o1", "s0",
                                               "s1", "s2", "s3"};
  EXPECT_EQ(in_names, expect_in);
  EXPECT_EQ(out_names, expect_out);
  EXPECT_EQ(g.isa.m(), 14u);
  EXPECT_EQ(g.isa.k(), 4u);
}

TEST(CasGenerator, InstructionRegisterHasShiftAndUpdateStages) {
  const GeneratedCas g = generate_cas(5, 2);  // k = 5
  EXPECT_EQ(g.netlist.dff_count(), 2u * g.isa.k());
}

TEST(CasGenerator, OptimizedImplIsSmallerForLargeM) {
  // §3.3: the optimized generation solves the area problem for large
  // busses. For N=8, P=4 (m=1682) the arithmetic decoder must beat the
  // one-hot decoder by a wide margin.
  const GeneratedCas generic = generate_cas(
      8, 4, {CasImplementation::Generic, true});
  const GeneratedCas opt = generate_cas(
      8, 4, {CasImplementation::OptimizedGateLevel, true});
  EXPECT_LT(opt.cell_count() * 2, generic.cell_count());
}

TEST(CasGenerator, GenericRefusesAbsurdDecodeSizes) {
  EXPECT_THROW((void)generate_cas(16, 8, {CasImplementation::Generic, false}),
               PreconditionError);
  // The optimized implementation handles the same geometry fine.
  const GeneratedCas g =
      generate_cas(16, 8, {CasImplementation::OptimizedGateLevel, false});
  EXPECT_GT(g.cell_count(), 0u);
}

TEST(CasGenerator, PassTransistorAreaScalesWithCrossbar) {
  const PassTransistorArea a44 = pass_transistor_area(4, 4);
  const PassTransistorArea a88 = pass_transistor_area(8, 8);
  EXPECT_GT(a88.transistors, a44.transistors);
  EXPECT_DOUBLE_EQ(a44.gate_equivalents, a44.transistors / 4.0);
  // Pass-transistor area must undercut gate-level GE for wide configs
  // ("they solve the CAS area problem for large width test busses").
  const GeneratedCas wide =
      generate_cas(8, 4, {CasImplementation::OptimizedGateLevel, true});
  const double wide_ge = netlist::AreaModel::typical().total(wide.netlist);
  EXPECT_LT(pass_transistor_area(8, 4).gate_equivalents, wide_ge);
}

TEST(CasGenerator, EmitsSynthesizableVhdlAndVerilog) {
  const GeneratedCas g = generate_cas(3, 1);
  const std::string vhdl = netlist::emit_vhdl(g.netlist);
  EXPECT_NE(vhdl.find("entity cas_n3_p1 is"), std::string::npos);
  EXPECT_NE(vhdl.find("clk : in std_logic"), std::string::npos);
  EXPECT_NE(vhdl.find("rising_edge(clk)"), std::string::npos);
  EXPECT_NE(vhdl.find("'Z'"), std::string::npos);  // tri-stated o ports

  const std::string verilog = netlist::emit_verilog(g.netlist);
  EXPECT_NE(verilog.find("module cas_n3_p1"), std::string::npos);
  EXPECT_NE(verilog.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(verilog.find("1'bz"), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

TEST(CasGenerator, TwoGateLevelCasesChainThroughWire0) {
  // Gate-level chained configuration: CAS A's s0 feeds CAS B's e0; one
  // shift session programs both (paper §3: daisy-chained IRs).
  const GeneratedCas ga = generate_cas(3, 1);  // k=3
  const GeneratedCas gb = generate_cas(3, 1);
  netlist::GateSim a(ga.netlist), bsim(gb.netlist);
  a.reset();
  bsim.reset();

  const std::uint64_t code_a = 3, code_b = 4;  // TEST wire1, TEST wire2
  const BitVector stream = build_config_stream(
      {ConfigEntry{3, code_a}, ConfigEntry{3, code_b}});

  const auto drive_both = [&](bool bit, bool config, bool update) {
    a.set_input("config", config);
    bsim.set_input("config", config);
    a.set_input("update", update);
    bsim.set_input("update", update);
    for (unsigned w = 0; w < 3; ++w) {
      a.set_input("e" + std::to_string(w), w == 0 && bit);
      a.set_input("i0", false);
      bsim.set_input("i0", false);
    }
    a.eval();
    // B's bus inputs come from A's outputs (wire segments).
    for (unsigned w = 0; w < 3; ++w)
      bsim.set_input("e" + std::to_string(w),
                     a.output("s" + std::to_string(w)));
    bsim.eval();
    a.tick();
    // Re-evaluate A so B's tick captures post-edge-consistent data? No:
    // both FF banks must capture pre-edge values, so B ticks on the values
    // set above.
    bsim.tick();
  };

  for (std::size_t i = 0; i < stream.size(); ++i)
    drive_both(stream.get(i), true, false);
  drive_both(false, true, true);  // update pulse

  // Verify by behavior: A must route wire1 to o0, B wire2 to o0.
  const auto probe = [&](netlist::GateSim& sim, unsigned wire) {
    sim.set_input("config", false);
    sim.set_input("update", false);
    for (unsigned w = 0; w < 3; ++w)
      sim.set_input("e" + std::to_string(w), w == wire);
    sim.set_input("i0", false);
    sim.eval();
    return sim.output("o0");
  };
  EXPECT_EQ(probe(a, 1), Logic4::One);
  EXPECT_EQ(probe(a, 2), Logic4::Zero);
  EXPECT_EQ(probe(bsim, 2), Logic4::One);
  EXPECT_EQ(probe(bsim, 1), Logic4::Zero);
}

}  // namespace
}  // namespace casbus::tam
