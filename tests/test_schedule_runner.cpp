// Closing the loop: analytic schedules executed cycle-accurately must
// land within a small deviation of their predicted cycle counts, and every
// response must check out.

#include <gtest/gtest.h>

#include "soc/schedule_runner.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"

namespace casbus::soc {
namespace {

tpg::SyntheticCoreSpec spec(std::uint64_t seed, std::size_t chains,
                            std::size_t ffs) {
  tpg::SyntheticCoreSpec s;
  s.n_inputs = 4;
  s.n_outputs = 4;
  s.n_flipflops = ffs;
  s.n_gates = 40;
  s.n_chains = chains;
  s.seed = seed;
  return s;
}

std::unique_ptr<Soc> build_mixed_soc() {
  SocBuilder b(4);
  b.add_scan_core("alpha", spec(1, 2, 12));
  b.add_scan_core("beta", spec(2, 1, 8));
  b.add_scan_core("gamma", spec(3, 2, 16));
  b.add_bist_core("delta", spec(4, 1, 8), 200);
  return b.build();
}

TEST(ScheduleRunner, SpecsMatchSocGeometry) {
  auto soc = build_mixed_soc();
  const auto specs = specs_of(*soc, 2);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].chains, (std::vector<std::size_t>{6, 6}));
  EXPECT_EQ(specs[0].patterns, 24u);
  EXPECT_EQ(specs[1].chains, (std::vector<std::size_t>{8}));
  EXPECT_EQ(specs[3].bist_cycles, 200u);
  EXPECT_FALSE(specs[3].is_scan());
}

class RunnerStrategies
    : public ::testing::TestWithParam<const char*> {};

TEST_P(RunnerStrategies, MeasuredMatchesPredictedWithinTolerance) {
  auto soc = build_mixed_soc();
  SocTester tester(*soc);
  const auto specs = specs_of(*soc, 1);
  sched::SessionScheduler scheduler(specs, 4);

  sched::Schedule schedule;
  const std::string which = GetParam();
  if (which == "single") schedule = scheduler.single_session();
  else if (which == "per_core") schedule = scheduler.per_core_sessions();
  else if (which == "greedy") schedule = scheduler.greedy();
  else schedule = scheduler.phased();

  const ScheduleRunReport report =
      run_schedule(*soc, tester, specs, schedule, 9);
  EXPECT_TRUE(report.all_pass) << which;
  EXPECT_EQ(report.sessions, schedule.sessions.size());
  // Analytic model vs simulator: the only unmodeled costs are the 2-cycle
  // BIST handshake margins and settle rounding — well under 5%.
  EXPECT_LT(report.deviation(), 0.05)
      << which << ": predicted " << report.predicted_cycles
      << " measured " << report.measured_cycles;
}

INSTANTIATE_TEST_SUITE_P(All, RunnerStrategies,
                         ::testing::Values("single", "per_core", "greedy",
                                           "phased"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ScheduleRunner, RejectsRailEmulation) {
  auto soc = build_mixed_soc();
  SocTester tester(*soc);
  const auto specs = specs_of(*soc, 1);
  sched::SessionScheduler scheduler(specs, 4);
  const sched::Schedule rails = scheduler.rail_emulation(2);
  EXPECT_FALSE(rails.chip_synchronous);
  EXPECT_THROW((void)run_schedule(*soc, tester, specs, rails, 1),
               PreconditionError);
}

TEST(ScheduleRunner, RejectsHierarchicalTopLevel) {
  SocBuilder b(4);
  b.add_hierarchical_core("h", 1, {{"c", spec(7, 1, 8)}});
  auto soc = b.build();
  EXPECT_THROW((void)specs_of(*soc, 1), PreconditionError);
}

TEST(ScheduleRunner, PhasedAppliesFullBudgetAcrossSessions) {
  // Each core's total applied pattern count must equal its spec budget,
  // even though phased splits it across sessions.
  auto soc = build_mixed_soc();
  SocTester tester(*soc);
  const auto specs = specs_of(*soc, 2);
  sched::SessionScheduler scheduler(specs, 4);
  const sched::Schedule schedule = scheduler.phased();
  ASSERT_GT(schedule.sessions.size(), 1u);

  const ScheduleRunReport report =
      run_schedule(*soc, tester, specs, schedule, 3);
  EXPECT_TRUE(report.all_pass);
  // Budget accounting: sum of session deltas equals the largest budget.
  std::size_t total_applied = 0;
  for (const auto& s : schedule.sessions) total_applied += s.patterns_applied;
  std::size_t max_budget = 0;
  for (const auto& c : specs) max_budget = std::max(max_budget, c.patterns);
  EXPECT_EQ(total_applied, max_budget);
}

}  // namespace
}  // namespace casbus::soc
