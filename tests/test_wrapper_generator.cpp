// Equivalence suite for the gate-level P1500 wrapper: the generated
// hardware must match the behavioral p1500::Wrapper cycle-for-cycle
// through instruction loads, boundary operations, scan traffic and BIST
// control, for a sweep of geometries.

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/gatesim.hpp"
#include "p1500/wrapper.hpp"
#include "p1500/wrapper_generator.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace casbus::p1500 {
namespace {

struct WrapCase {
  std::size_t ni, no, chains;
  bool bist;
};

std::string case_name(const ::testing::TestParamInfo<WrapCase>& info) {
  std::ostringstream os;
  os << "i" << info.param.ni << "_o" << info.param.no << "_c"
     << info.param.chains << (info.param.bist ? "_bist" : "");
  return os.str();
}

/// Drives the behavioral wrapper and the generated netlist with identical
/// stimuli; compares every output every cycle.
class WrapperEquivalence : public ::testing::TestWithParam<WrapCase> {
 protected:
  void SetUp() override {
    const WrapCase& prm = GetParam();
    ni_ = prm.ni;
    no_ = prm.no;
    nc_ = prm.chains;
    np_ = std::max<std::size_t>(nc_, prm.bist ? 1 : 0);
    has_bist_ = prm.bist;

    WrapperSpec spec;
    spec.name = "dut";
    spec.n_func_in = ni_;
    spec.n_func_out = no_;
    spec.n_chains = nc_;
    spec.has_bist = has_bist_;
    gate_ = std::make_unique<netlist::GateSim>(generate_wrapper(spec));
    gate_->reset();

    // Behavioral twin.
    FunctionalPorts func;
    for (std::size_t i = 0; i < ni_; ++i) {
      func.sys_in.push_back(&sim_.wire("sys_in", Logic4::Zero));
      func.core_in.push_back(&sim_.wire("core_in", Logic4::Zero));
    }
    for (std::size_t i = 0; i < no_; ++i) {
      func.core_out.push_back(&sim_.wire("core_out", Logic4::Zero));
      func.sys_out.push_back(&sim_.wire("sys_out", Logic4::Zero));
    }
    CoreTestPorts core;
    core.scan_en = &sim_.wire("scan_en", Logic4::Zero);
    core.core_clk_en = &sim_.wire("clk_en", Logic4::Zero);
    for (std::size_t c = 0; c < nc_; ++c) {
      core.scan_in.push_back(&sim_.wire("scan_si", Logic4::Zero));
      core.scan_out.push_back(&sim_.wire("scan_so", Logic4::Zero));
      core.chain_lengths.push_back(4);
    }
    if (has_bist_) {
      core.bist_start = &sim_.wire("bist_start", Logic4::Zero);
      core.bist_done = &sim_.wire("bist_done", Logic4::Zero);
      core.bist_pass = &sim_.wire("bist_pass", Logic4::Zero);
    }
    TamPorts tam;
    tam.wsi = &sim_.wire("wsi", Logic4::Zero);
    tam.wso = &sim_.wire("wso", Logic4::Zero);
    for (std::size_t j = 0; j < np_; ++j) {
      tam.wpi.push_back(&sim_.wire("wpi", Logic4::Zero));
      tam.wpo.push_back(&sim_.wire("wpo", Logic4::Zero));
    }
    WscWires wsc{&sim_.wire("sel", Logic4::Zero),
                 &sim_.wire("shift", Logic4::Zero),
                 &sim_.wire("capture", Logic4::Zero),
                 &sim_.wire("update", Logic4::Zero)};

    func_ = func;
    core_ = core;
    tam_ = tam;
    wsc_ = wsc;
    wrapper_ = std::make_unique<Wrapper>(sim_, "behav", func, core, tam,
                                         wsc);
    sim_.add(wrapper_.get());
    sim_.reset();
  }

  /// One input vector for both models.
  void drive(Rng& rng, bool sel, bool shift, bool capture, bool update) {
    const bool wsi = rng.coin();
    tam_.wsi->set(wsi);
    gate_->set_input("wsi", wsi);
    wsc_.select_wir->set(sel);
    gate_->set_input("select_wir", sel);
    wsc_.shift_wr->set(shift);
    gate_->set_input("shift_wr", shift);
    wsc_.capture_wr->set(capture);
    gate_->set_input("capture_wr", capture);
    wsc_.update_wr->set(update);
    gate_->set_input("update_wr", update);

    for (std::size_t i = 0; i < ni_; ++i) {
      const bool v = rng.coin();
      func_.sys_in[i]->set(v);
      gate_->set_input("sys_in" + std::to_string(i), v);
    }
    for (std::size_t i = 0; i < no_; ++i) {
      const bool v = rng.coin();
      func_.core_out[i]->set(v);
      gate_->set_input("core_out" + std::to_string(i), v);
    }
    for (std::size_t c = 0; c < nc_; ++c) {
      const bool v = rng.coin();
      core_.scan_out[c]->set(v);
      gate_->set_input("scan_so" + std::to_string(c), v);
    }
    for (std::size_t j = 0; j < np_; ++j) {
      const bool v = rng.coin();
      tam_.wpi[j]->set(v);
      gate_->set_input("wpi" + std::to_string(j), v);
    }
    if (has_bist_) {
      const bool d = rng.coin(), p = rng.coin();
      core_.bist_done->set(d);
      gate_->set_input("bist_done", d);
      core_.bist_pass->set(p);
      gate_->set_input("bist_pass", p);
    }
  }

  void check(const std::string& ctx) {
    sim_.settle();
    gate_->eval();
    EXPECT_EQ(gate_->output("wso"), tam_.wso->get()) << ctx << " wso";
    EXPECT_EQ(gate_->output("scan_en"), core_.scan_en->get())
        << ctx << " scan_en";
    EXPECT_EQ(gate_->output("core_clk_en"), core_.core_clk_en->get())
        << ctx << " clk_en";
    for (std::size_t i = 0; i < ni_; ++i)
      EXPECT_EQ(gate_->output("core_in" + std::to_string(i)),
                func_.core_in[i]->get())
          << ctx << " core_in" << i;
    for (std::size_t i = 0; i < no_; ++i)
      EXPECT_EQ(gate_->output("sys_out" + std::to_string(i)),
                func_.sys_out[i]->get())
          << ctx << " sys_out" << i;
    for (std::size_t c = 0; c < nc_; ++c)
      EXPECT_EQ(gate_->output("scan_si" + std::to_string(c)),
                core_.scan_in[c]->get())
          << ctx << " scan_si" << c;
    for (std::size_t j = 0; j < np_; ++j)
      EXPECT_EQ(gate_->output("wpo" + std::to_string(j)),
                tam_.wpo[j]->get())
          << ctx << " wpo" << j;
    if (has_bist_) {
      EXPECT_EQ(gate_->output("bist_start"), core_.bist_start->get())
          << ctx << " bist_start";
    }
  }

  void tick() {
    sim_.step();
    gate_->tick();
  }

  /// Loads a wrapper instruction into both models.
  void load_instr(WrapperInstr instr, Rng& rng) {
    const auto code = static_cast<unsigned>(instr);
    for (unsigned bit = kWirBits; bit-- > 0;) {
      drive(rng, true, true, false, false);
      const bool v = ((code >> bit) & 1u) != 0;
      tam_.wsi->set(v);
      gate_->set_input("wsi", v);
      check("wir shift");
      tick();
    }
    drive(rng, true, false, false, true);
    check("wir update");
    tick();
  }

  std::size_t ni_ = 0, no_ = 0, nc_ = 0, np_ = 0;
  bool has_bist_ = false;
  sim::Simulation sim_;
  std::unique_ptr<Wrapper> wrapper_;
  std::unique_ptr<netlist::GateSim> gate_;
  FunctionalPorts func_;
  CoreTestPorts core_;
  TamPorts tam_;
  WscWires wsc_;
};

TEST_P(WrapperEquivalence, RandomSessionsMatch) {
  Rng rng(42 + ni_ * 5 + no_ * 3 + nc_);
  const WrapperInstr all[] = {WrapperInstr::Bypass,  WrapperInstr::Preload,
                              WrapperInstr::Extest,
                              WrapperInstr::IntestSerial,
                              WrapperInstr::IntestParallel,
                              WrapperInstr::Bist};
  for (const WrapperInstr instr : all) {
    load_instr(instr, rng);
    EXPECT_EQ(wrapper_->instruction(), instr);

    // Random mix of shift / capture / update / idle cycles.
    for (int cycle = 0; cycle < 24; ++cycle) {
      const int op = static_cast<int>(rng.below(5));
      drive(rng, false, op == 0 || op == 1, op == 2, op == 3);
      check("instr " + std::to_string(static_cast<int>(instr)) +
            " cycle " + std::to_string(cycle));
      tick();
    }
  }
}

TEST_P(WrapperEquivalence, FuzzControlIncludingWirTraffic) {
  Rng rng(7 + ni_ + no_ + nc_);
  for (int cycle = 0; cycle < 300; ++cycle) {
    // Fully random control (including select_wir) — shift and capture
    // together are excluded (the controller contract forbids them).
    const bool sel = rng.coin(0.3);
    bool shift = rng.coin();
    bool capture = !shift && rng.coin(0.3);
    const bool update = rng.coin(0.2);
    drive(rng, sel, shift, capture, update);
    check("fuzz cycle " + std::to_string(cycle));
    tick();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WrapperEquivalence,
    ::testing::Values(WrapCase{2, 2, 1, false}, WrapCase{0, 0, 0, true},
                      WrapCase{3, 2, 2, false}, WrapCase{1, 4, 3, false},
                      WrapCase{2, 2, 1, true}, WrapCase{0, 3, 2, false},
                      WrapCase{4, 0, 1, false}),
    case_name);

TEST(WrapperGenerator, StructureAndEmission) {
  WrapperSpec spec;
  spec.name = "wrap42";
  spec.n_func_in = 3;
  spec.n_func_out = 2;
  spec.n_chains = 2;
  const netlist::Netlist nl = generate_wrapper(spec);
  // Registers: 3 WIR shift + 3 WIR update + WBY + (3+2) boundary shift +
  // (3+2) boundary update = 17 flip-flops.
  EXPECT_EQ(nl.dff_count(), 17u);
  netlist::GateSim sim(nl);  // levelizes: no combinational cycles
  EXPECT_GT(sim.depth(), 0u);
}

}  // namespace
}  // namespace casbus::p1500
