// Unit tests for src/util: BitVector, Rng, Logic4, Table, strings.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/bitvector.hpp"
#include "util/error.hpp"
#include "util/logic.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace casbus {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_TRUE(bv.empty());
}

TEST(BitVector, ConstructFilled) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.size(), 70u);
  EXPECT_EQ(bv.popcount(), 70u);
  bv.fill(false);
  EXPECT_EQ(bv.popcount(), 0u);
}

TEST(BitVector, SetGetAcrossWordBoundary) {
  BitVector bv(130);
  bv.set(0, true);
  bv.set(63, true);
  bv.set(64, true);
  bv.set(129, true);
  EXPECT_TRUE(bv.get(0));
  EXPECT_TRUE(bv.get(63));
  EXPECT_TRUE(bv.get(64));
  EXPECT_TRUE(bv.get(129));
  EXPECT_FALSE(bv.get(1));
  EXPECT_EQ(bv.popcount(), 4u);
}

TEST(BitVector, GetOutOfRangeThrows) {
  BitVector bv(8);
  EXPECT_THROW((void)bv.get(8), PreconditionError);
  EXPECT_THROW(bv.set(8, true), PreconditionError);
}

TEST(BitVector, FromStringAndToString) {
  const BitVector bv = BitVector::from_string("1011_0010");
  EXPECT_EQ(bv.size(), 8u);
  EXPECT_EQ(bv.to_string(), "10110010");
  EXPECT_TRUE(bv.get(0));
  EXPECT_FALSE(bv.get(1));
  EXPECT_THROW(BitVector::from_string("10x"), PreconditionError);
}

TEST(BitVector, FromUintRoundTrip) {
  const BitVector bv = BitVector::from_uint(0xC5, 8);
  EXPECT_EQ(bv.to_uint(), 0xC5u);
  EXPECT_EQ(BitVector::from_uint(0xFFFF, 8).to_uint(), 0xFFu);
}

TEST(BitVector, ShiftInMovesTowardMsb) {
  BitVector bv(3);
  // shift sequence 1,0,1 -> register [1,0,1] reading stage0..2 = last-in
  // first: stage0 = most recent bit.
  EXPECT_FALSE(bv.shift_in(true));
  EXPECT_FALSE(bv.shift_in(false));
  EXPECT_FALSE(bv.shift_in(true));
  EXPECT_EQ(bv.to_string(), "101");
  // The first inserted 1 is now at the top; next shift pops it.
  EXPECT_TRUE(bv.shift_in(false));
}

TEST(BitVector, ShiftInEmptyPassesThrough) {
  BitVector bv;
  EXPECT_TRUE(bv.shift_in(true));
  EXPECT_FALSE(bv.shift_in(false));
}

TEST(BitVector, ShiftChainOf130BitsRoundTrips) {
  // Property: shifting a 130-bit register 130 times reproduces the input
  // stream in order.
  Rng rng(7);
  BitVector reg(130);
  std::vector<bool> in;
  for (int i = 0; i < 130; ++i) in.push_back(rng.coin());
  for (bool b : in) reg.shift_in(b);
  std::vector<bool> out;
  for (int i = 0; i < 130; ++i) out.push_back(reg.shift_in(false));
  EXPECT_EQ(in, out);
}

TEST(BitVector, XorAndEquality) {
  BitVector a = BitVector::from_string("1100");
  const BitVector b = BitVector::from_string("1010");
  a ^= b;
  EXPECT_EQ(a.to_string(), "0110");
  EXPECT_NE(a, b);
  a ^= a;
  EXPECT_EQ(a, BitVector(4));
  BitVector c(3);
  EXPECT_THROW(c ^= b, PreconditionError);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_THROW((void)rng.below(0), PreconditionError);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, CoinBiasRoughlyHonored) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.coin(0.25)) ++heads;
  EXPECT_GT(heads, 2000);
  EXPECT_LT(heads, 3000);
}

TEST(Logic4, BasicPredicates) {
  EXPECT_TRUE(is01(Logic4::Zero));
  EXPECT_TRUE(is01(Logic4::One));
  EXPECT_FALSE(is01(Logic4::Z));
  EXPECT_FALSE(is01(Logic4::X));
  EXPECT_EQ(to_logic(true), Logic4::One);
  EXPECT_THROW(to_bool(Logic4::Z), PreconditionError);
}

TEST(Logic4, AndOrTruthTables) {
  EXPECT_EQ(logic_and(Logic4::Zero, Logic4::X), Logic4::Zero);
  EXPECT_EQ(logic_and(Logic4::One, Logic4::X), Logic4::X);
  EXPECT_EQ(logic_and(Logic4::One, Logic4::One), Logic4::One);
  EXPECT_EQ(logic_or(Logic4::One, Logic4::X), Logic4::One);
  EXPECT_EQ(logic_or(Logic4::Zero, Logic4::X), Logic4::X);
  EXPECT_EQ(logic_or(Logic4::Zero, Logic4::Zero), Logic4::Zero);
}

TEST(Logic4, NotXorMux) {
  EXPECT_EQ(logic_not(Logic4::Zero), Logic4::One);
  EXPECT_EQ(logic_not(Logic4::Z), Logic4::X);
  EXPECT_EQ(logic_xor(Logic4::One, Logic4::Zero), Logic4::One);
  EXPECT_EQ(logic_xor(Logic4::One, Logic4::Z), Logic4::X);
  EXPECT_EQ(logic_mux(Logic4::Zero, Logic4::One, Logic4::Zero), Logic4::One);
  EXPECT_EQ(logic_mux(Logic4::One, Logic4::One, Logic4::Zero), Logic4::Zero);
  EXPECT_EQ(logic_mux(Logic4::X, Logic4::One, Logic4::One), Logic4::One);
  EXPECT_EQ(logic_mux(Logic4::X, Logic4::One, Logic4::Zero), Logic4::X);
}

TEST(Logic4, TribufAndResolution) {
  EXPECT_EQ(logic_tribuf(Logic4::Zero, Logic4::One), Logic4::Z);
  EXPECT_EQ(logic_tribuf(Logic4::One, Logic4::One), Logic4::One);
  EXPECT_EQ(logic_tribuf(Logic4::X, Logic4::One), Logic4::X);
  EXPECT_EQ(resolve(Logic4::Z, Logic4::One), Logic4::One);
  EXPECT_EQ(resolve(Logic4::Zero, Logic4::Z), Logic4::Zero);
  EXPECT_EQ(resolve(Logic4::Zero, Logic4::One), Logic4::X);
  EXPECT_EQ(resolve(Logic4::Z, Logic4::Z), Logic4::Z);
}

TEST(Logic4, CharConversionRoundTrip) {
  for (const Logic4 v :
       {Logic4::Zero, Logic4::One, Logic4::Z, Logic4::X}) {
    EXPECT_EQ(logic_from_char(to_char(v)), v);
  }
  EXPECT_THROW(logic_from_char('q'), PreconditionError);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"N", "P", "gates"});
  t.add_row({"3", "1", "16"});
  t.add_row({"8", "4", "4400"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| N | P | gates |"), std::string::npos);
  EXPECT_NE(s.find("4400"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), PreconditionError);
}

TEST(Strings, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("cas_n4_p2"));
  EXPECT_FALSE(is_identifier("4cas"));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier(""));
}

TEST(Errors, MacroThrowsWithContext) {
  try {
    CASBUS_REQUIRE(1 == 2, "math still works");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("math still works"), std::string::npos);
  }
}

}  // namespace
}  // namespace casbus
