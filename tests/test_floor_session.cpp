// The streaming test-floor service: live submission, slot-ordered polling,
// bounded backpressure, graceful close, the per-worker program/verdict
// caches, and the refactor's headline guarantee — deterministic summaries
// that are byte-identical across worker counts, cache settings, and the
// batch-vs-streaming API split.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "floor/job_factory.hpp"
#include "floor/program_cache.hpp"
#include "floor/session.hpp"
#include "floor/test_floor.hpp"

namespace casbus::floor {
namespace {

/// A repeated-spec job list: \p count jobs cycling through \p distinct
/// base recipes (ids stay 0..count-1 so slots and summaries line up).
std::vector<JobSpec> repeated_jobs(std::uint64_t seed, std::size_t count,
                                   std::size_t distinct) {
  const JobFactory factory(seed);
  std::vector<JobSpec> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    JobSpec spec = factory.make_job(i % distinct);
    spec.id = i;
    jobs.push_back(spec);
  }
  return jobs;
}

// --- FloorSession: streaming behavior ---------------------------------------

TEST(FloorSession, ExecutesJobsSubmittedAfterWorkersStart) {
  const JobFactory factory(31);
  FloorConfig config;
  config.workers = 2;
  FloorSession session(config);

  // First wave; wait until the pool has demonstrably executed some of it,
  // then submit the second wave — the jobs arrive *while the floor runs*.
  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_TRUE(session.submit(factory.make_job(i)));
  while (session.completed() < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (std::size_t i = 4; i < 8; ++i)
    ASSERT_TRUE(session.submit(factory.make_job(i)));

  const FloorReport report = session.drain();
  EXPECT_EQ(report.total.jobs, 8u);
  EXPECT_TRUE(report.all_pass());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(report.results[i].id, i);
}

TEST(FloorSession, PollDeliversSlotOrderedResultsExactlyOnce) {
  const JobFactory factory(32);
  FloorConfig config;
  config.workers = 3;
  FloorSession session(config);
  for (std::size_t i = 0; i < 9; ++i)
    ASSERT_TRUE(session.submit(factory.make_job(i)));

  // Poll while running: results must come out in arrival order with no
  // gaps, duplicates, or losses, no matter how workers interleave.
  std::vector<JobResult> collected;
  while (collected.size() < 9) {
    for (JobResult& r : session.poll_results())
      collected.push_back(std::move(r));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(collected[i].id, i);
  EXPECT_TRUE(session.poll_results().empty());  // delivered exactly once

  // Polled results still appear in the drained aggregate, and polling
  // after drain is a clean no-op (drain owns the results).
  const FloorReport report = session.drain();
  EXPECT_EQ(report.total.jobs, 9u);
  EXPECT_EQ(report.results.size(), 9u);
  EXPECT_TRUE(session.poll_results().empty());
}

TEST(FloorSession, SubmitAfterCloseIsRejectedGracefully) {
  const JobFactory factory(33);
  FloorConfig config;
  config.workers = 2;
  FloorSession session(config);
  ASSERT_TRUE(session.submit(factory.make_job(0)));
  session.close();
  EXPECT_FALSE(session.submit(factory.make_job(1)));
  EXPECT_FALSE(session.try_submit(factory.make_job(2)));
  EXPECT_EQ(session.submitted(), 1u);

  const FloorReport report = session.drain();
  EXPECT_EQ(report.total.jobs, 1u);  // only the accepted job ran
}

TEST(FloorSession, BackpressureRefusesAndReleases) {
  // One worker, capacity 1: a producer spamming try_submit must hit the
  // bound long before the worker can drain 32 simulations; blocking
  // submits behind the same bound must all eventually land.
  FloorConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.cache_capacity = 0;  // every job simulates: keeps the worker busy
  const JobFactory factory(34);
  FloorSession session(config);

  bool refused = false;
  std::size_t accepted = 0;
  for (std::size_t burst = 0; burst < 32 && !refused; ++burst) {
    if (session.try_submit(factory.make_job(accepted))) ++accepted;
    else refused = true;
  }
  EXPECT_TRUE(refused) << "capacity bound never engaged";

  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_TRUE(session.submit(factory.make_job(accepted + i)));

  const FloorReport report = session.drain();
  EXPECT_EQ(report.total.jobs, accepted + 4);
  EXPECT_TRUE(report.all_pass());
}

TEST(FloorSession, ProducersRacingCloseAreSafe) {
  // Regression for the old push-after-close hard failure: producers
  // submitting while another thread closes must see clean rejections.
  FloorConfig config;
  config.workers = 2;
  config.queue_capacity = 2;
  const JobFactory factory(35);
  auto session = std::make_unique<FloorSession>(config);

  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  std::atomic<std::size_t> rejected{0};
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&session, &factory, &go, &rejected, p] {
      while (!go.load()) {
      }
      for (std::size_t i = 0; i < 16; ++i)
        if (!session->submit(factory.make_job(16 * p + i))) ++rejected;
    });
  }
  go.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  session->close();
  for (auto& t : producers) t.join();

  const FloorReport report = session->drain();
  EXPECT_EQ(report.total.jobs + rejected.load(), 48u);
}

// --- Determinism across APIs, worker counts, and cache settings -------------

TEST(FloorSession, StreamingMatchesBatchByteForByte) {
  const JobFactory factory(20260729);
  const auto jobs = factory.make_jobs(10);

  FloorConfig config;
  config.workers = 4;
  config.queue_capacity = 3;  // exercise backpressure on the way
  FloorSession session(config);
  EXPECT_EQ(session.submit_batch(jobs), jobs.size());
  const FloorReport streamed = session.drain();

  const FloorReport batch = TestFloor(FloorConfig{1}).run(jobs);
  EXPECT_EQ(streamed.deterministic_summary(),
            batch.deterministic_summary());
}

TEST(FloorSession, CacheOnAndOffAreByteIdenticalAt1And4Workers) {
  // Repeated specs make the caches actually fire; the deterministic
  // summary must not notice them, at any worker count.
  const auto jobs = repeated_jobs(77, 24, 3);

  std::string reference;
  for (const std::size_t workers : {1u, 4u}) {
    for (const std::size_t cache : {0u, 8u}) {
      for (const bool verdicts : {false, true}) {
        FloorConfig config;
        config.workers = workers;
        config.cache_capacity = cache;
        config.reuse_verdicts = verdicts;
        const FloorReport report = TestFloor(config).run(jobs);
        if (reference.empty()) reference = report.deterministic_summary();
        EXPECT_EQ(report.deterministic_summary(), reference)
            << "workers=" << workers << " cache=" << cache
            << " verdicts=" << verdicts;
        // The cache serves repeats whenever it is enabled at all: with
        // verdict reuse every repeat hits; program-tier-only still hits
        // for every repeated scheduled recipe.
        if (cache > 0 && verdicts) {
          EXPECT_GE(report.cache_hits, jobs.size() - 3 * workers);
        }
        if (cache == 0) {
          EXPECT_EQ(report.cache_hits, 0u);
        }
      }
    }
  }
}

TEST(FloorSession, VerdictReuseRestampsJobIds) {
  const auto jobs = repeated_jobs(55, 8, 1);  // one recipe, 8 jobs
  FloorConfig config;
  config.workers = 1;
  const FloorReport report = TestFloor(config).run(jobs);
  ASSERT_EQ(report.results.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(report.results[i].id, i);  // not the qualifying job's id
    if (i > 0) {
      EXPECT_TRUE(report.results[i].cache_hit());
      EXPECT_EQ(report.results[i].cache_tier, CacheTier::Verdict);
    }
  }
  EXPECT_EQ(report.cache_hits, 7u);
  EXPECT_EQ(report.verdict_tier_hits, 7u);
  EXPECT_EQ(report.program_tier_hits, 0u);
}

// --- Stage accounting -------------------------------------------------------

TEST(FloorSession, StageSecondsCoverThePipeline) {
  const JobFactory factory(66);
  const FloorReport report =
      TestFloor(FloorConfig{2}).run(factory.make_jobs(6));
  double total = 0.0;
  for (std::size_t s = 0; s < kStageCount; ++s) {
    EXPECT_GE(report.stage_seconds[s], 0.0);
    total += report.stage_seconds[s];
  }
  EXPECT_GT(total, 0.0);
  // Simulation dominates these paper-sized jobs by construction.
  EXPECT_GT(report.stage_seconds[static_cast<std::size_t>(Stage::Simulate)],
            report.stage_seconds[static_cast<std::size_t>(Stage::Schedule)]);
}

// --- ProgramCache unit behavior ---------------------------------------------

TEST(ProgramCache, LruEvictsOldestRecipe) {
  ProgramCache cache(2);
  JobSpec a, b, c;
  a.seed = 1;
  b.seed = 2;
  c.seed = 3;
  JobResult result;
  result.pass = true;
  cache.qualify(a, result);
  cache.qualify(b, result);
  EXPECT_TRUE(cache.reuse(a).has_value());  // refresh a; b is now LRU
  cache.qualify(c, result);                 // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.reuse(a).has_value());
  EXPECT_FALSE(cache.reuse(b).has_value());
  EXPECT_TRUE(cache.reuse(c).has_value());
}

TEST(ProgramCache, CapacityZeroDisablesEverything) {
  ProgramCache cache(0);
  JobSpec spec;
  JobResult result;
  result.pass = true;
  cache.qualify(spec, result);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.reuse(spec).has_value());
  EXPECT_EQ(cache.find_program(spec), nullptr);
}

TEST(ProgramCache, ReuseZeroesTimingAndMarksHit) {
  ProgramCache cache(4);
  JobSpec spec;
  JobResult result;
  result.pass = true;
  result.wall_seconds = 1.5;
  result.stage_seconds[0] = 0.5;
  cache.qualify(spec, result);
  const auto memo = cache.reuse(spec);
  ASSERT_TRUE(memo.has_value());
  EXPECT_TRUE(memo->cache_hit());
  EXPECT_EQ(memo->cache_tier, CacheTier::Verdict);
  EXPECT_EQ(memo->wall_seconds, 0.0);
  EXPECT_EQ(memo->stage_seconds[0], 0.0);
  EXPECT_TRUE(memo->pass);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.lookups(), 1u);
}

TEST(ProgramCache, VerdictTierCanBeDisabledIndependently) {
  ProgramCache cache(4, /*reuse_verdicts=*/false);
  JobSpec spec;
  JobResult result;
  result.pass = true;
  cache.qualify(spec, result);
  EXPECT_FALSE(cache.reuse(spec).has_value());
  // The program tier still works.
  auto program = std::make_shared<soc::CompiledProgram>();
  cache.put_program(spec, program);
  EXPECT_EQ(cache.find_program(spec), program);
}

}  // namespace
}  // namespace casbus::floor
