// Unit tests for the netlist data structure, builder and gate-level
// simulator.

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/gatesim.hpp"
#include "netlist/netlist.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace casbus::netlist {
namespace {

TEST(Builder, SimpleAndGate) {
  NetlistBuilder b("and_test");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  b.output("y", b.and2(a, c));
  const Netlist nl = b.take();
  EXPECT_EQ(nl.name(), "and_test");
  EXPECT_EQ(nl.cell_count(), 1u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(Builder, TakeTwiceThrows) {
  NetlistBuilder b("x");
  const NetId a = b.input("a");
  b.output("y", b.buf(a));
  (void)b.take();
  EXPECT_THROW((void)b.take(), PreconditionError);
}

TEST(Builder, OutputOnUnknownNetThrows) {
  NetlistBuilder b("x");
  EXPECT_THROW(b.output("y", 42), PreconditionError);
}

TEST(Netlist, ValidateRejectsDoubleDrivers) {
  NetlistBuilder b("bad");
  const NetId a = b.input("a");
  const NetId y = b.buf(a);
  b.tribuf(a, a, y);  // mixes plain driver with tri-state on one net
  b.output("y", y);
  EXPECT_THROW((void)b.take(), InvariantError);
}

TEST(Netlist, KindHistogramAndNames) {
  NetlistBuilder b("hist");
  const NetId a = b.input("a");
  const NetId n1 = b.not_(a);
  const NetId n2 = b.xor2(a, n1);
  b.output("y", b.dff(n2, "state"));
  const Netlist nl = b.take();
  const auto h = nl.kind_histogram();
  EXPECT_EQ(h[static_cast<std::size_t>(CellKind::Not)], 1u);
  EXPECT_EQ(h[static_cast<std::size_t>(CellKind::Xor2)], 1u);
  EXPECT_EQ(h[static_cast<std::size_t>(CellKind::Dff)], 1u);
  EXPECT_EQ(nl.dff_count(), 1u);
  // The DFF output net carries its given name.
  bool found = false;
  for (const auto& [net, name] : nl.net_names())
    if (name == "state") found = true;
  EXPECT_TRUE(found);
}

class GateTruth : public ::testing::TestWithParam<CellKind> {};

TEST_P(GateTruth, MatchesLogic4Semantics) {
  // Exhaustively compare each 2-input gate against the Logic4 operators
  // over the full 4-state domain.
  const CellKind kind = GetParam();
  NetlistBuilder b("truth");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  NetId y = kNoNet;
  switch (kind) {
    case CellKind::And2: y = b.and2(a, c); break;
    case CellKind::Or2: y = b.or2(a, c); break;
    case CellKind::Nand2: y = b.nand2(a, c); break;
    case CellKind::Nor2: y = b.nor2(a, c); break;
    case CellKind::Xor2: y = b.xor2(a, c); break;
    case CellKind::Xnor2: y = b.xnor2(a, c); break;
    default: FAIL();
  }
  b.output("y", y);
  const Netlist nl = b.take();
  GateSim sim(nl);

  const Logic4 vals[] = {Logic4::Zero, Logic4::One, Logic4::Z, Logic4::X};
  for (const Logic4 va : vals) {
    for (const Logic4 vb : vals) {
      sim.set_input("a", va);
      sim.set_input("b", vb);
      sim.eval();
      Logic4 expect = Logic4::X;
      switch (kind) {
        case CellKind::And2: expect = logic_and(va, vb); break;
        case CellKind::Or2: expect = logic_or(va, vb); break;
        case CellKind::Nand2: expect = logic_not(logic_and(va, vb)); break;
        case CellKind::Nor2: expect = logic_not(logic_or(va, vb)); break;
        case CellKind::Xor2: expect = logic_xor(va, vb); break;
        case CellKind::Xnor2: expect = logic_not(logic_xor(va, vb)); break;
        default: FAIL();
      }
      EXPECT_EQ(sim.output("y"), expect)
          << kind_name(kind) << '(' << to_char(va) << ',' << to_char(vb)
          << ')';
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGates, GateTruth,
                         ::testing::Values(CellKind::And2, CellKind::Or2,
                                           CellKind::Nand2, CellKind::Nor2,
                                           CellKind::Xor2, CellKind::Xnor2),
                         [](const auto& info) {
                           return kind_name(info.param);
                         });

TEST(GateSimTest, MuxSelectsAndPropagatesX) {
  NetlistBuilder b("mux");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  const NetId s = b.input("s");
  b.output("y", b.mux2(s, a, c));
  GateSim sim(b.take());
  sim.set_input("a", true);
  sim.set_input("b", false);
  sim.set_input("s", false);
  sim.eval();
  EXPECT_EQ(sim.output("y"), Logic4::One);
  sim.set_input("s", true);
  sim.eval();
  EXPECT_EQ(sim.output("y"), Logic4::Zero);
  sim.set_input("s", Logic4::X);
  sim.eval();
  EXPECT_EQ(sim.output("y"), Logic4::X);
}

TEST(GateSimTest, TristateBusResolution) {
  // Two tri-state drivers on one net: exclusive enables resolve cleanly,
  // both-off yields Z, conflicting drivers yield X.
  NetlistBuilder b("tri");
  const NetId d0 = b.input("d0");
  const NetId e0 = b.input("en0");
  const NetId d1 = b.input("d1");
  const NetId e1 = b.input("en1");
  const NetId bus = b.tribuf(e0, d0);
  b.tribuf(e1, d1, bus);
  b.output("y", bus);
  GateSim sim(b.take());

  sim.set_input("d0", true);
  sim.set_input("en0", true);
  sim.set_input("d1", false);
  sim.set_input("en1", false);
  sim.eval();
  EXPECT_EQ(sim.output("y"), Logic4::One);

  sim.set_input("en0", false);
  sim.eval();
  EXPECT_EQ(sim.output("y"), Logic4::Z);

  sim.set_input("en0", true);
  sim.set_input("en1", true);
  sim.eval();
  EXPECT_EQ(sim.output("y"), Logic4::X);  // 1 vs 0 conflict
}

TEST(GateSimTest, DffCapturesOnTick) {
  NetlistBuilder b("ff");
  const NetId d = b.input("d");
  b.output("q", b.dff(d));
  GateSim sim(b.take());
  sim.reset();
  sim.set_input("d", true);
  sim.eval();
  EXPECT_EQ(sim.output("q"), Logic4::Zero);  // not yet clocked
  sim.tick();
  EXPECT_EQ(sim.output("q"), Logic4::One);
}

TEST(GateSimTest, DffeHoldsWithoutEnable) {
  NetlistBuilder b("ffe");
  const NetId d = b.input("d");
  const NetId en = b.input("en");
  b.output("q", b.dffe(d, en));
  GateSim sim(b.take());
  sim.reset();
  sim.set_input("d", true);
  sim.set_input("en", false);
  sim.eval();
  sim.tick();
  EXPECT_EQ(sim.output("q"), Logic4::Zero);  // held
  sim.set_input("en", true);
  sim.eval();
  sim.tick();
  EXPECT_EQ(sim.output("q"), Logic4::One);  // captured
}

TEST(GateSimTest, ShiftChainMovesOneStagePerTick) {
  NetlistBuilder b("chain");
  const NetId d = b.input("d");
  const auto qs = b.shift_chain(d, 4, "st");
  b.output("q", qs.back());
  GateSim sim(b.take());
  sim.reset();
  sim.set_input("d", true);
  sim.eval();
  for (int i = 0; i < 3; ++i) {
    sim.tick();
    EXPECT_EQ(sim.output("q"), Logic4::Zero) << "cycle " << i;
    sim.set_input("d", false);
    sim.eval();
  }
  sim.tick();
  EXPECT_EQ(sim.output("q"), Logic4::One);  // arrives after 4 ticks
}

TEST(GateSimTest, MuxNSelectsEveryInput) {
  NetlistBuilder b("muxn");
  std::vector<NetId> data;
  for (int i = 0; i < 5; ++i) data.push_back(b.input("d" + std::to_string(i)));
  std::vector<NetId> sel;
  for (int i = 0; i < 3; ++i) sel.push_back(b.input("s" + std::to_string(i)));
  b.output("y", b.mux_n(sel, data));
  GateSim sim(b.take());

  for (unsigned pick = 0; pick < 5; ++pick) {
    for (unsigned i = 0; i < 5; ++i)
      sim.set_input("d" + std::to_string(i), i == pick);
    for (unsigned i = 0; i < 3; ++i)
      sim.set_input("s" + std::to_string(i), ((pick >> i) & 1u) != 0);
    sim.eval();
    EXPECT_EQ(sim.output("y"), Logic4::One) << "select " << pick;
  }
}

TEST(GateSimTest, DecoderIsOneHot) {
  NetlistBuilder b("dec");
  std::vector<NetId> code;
  for (int i = 0; i < 3; ++i)
    code.push_back(b.input("c" + std::to_string(i)));
  const auto lines = b.decoder(code, 6);
  for (std::size_t i = 0; i < lines.size(); ++i)
    b.output("y" + std::to_string(i), lines[i]);
  GateSim sim(b.take());

  for (unsigned v = 0; v < 8; ++v) {
    for (unsigned i = 0; i < 3; ++i)
      sim.set_input("c" + std::to_string(i), ((v >> i) & 1u) != 0);
    sim.eval();
    for (unsigned line = 0; line < 6; ++line) {
      EXPECT_EQ(sim.output("y" + std::to_string(line)),
                to_logic(line == v))
          << "code " << v << " line " << line;
    }
  }
}

TEST(GateSimTest, CombinationalCycleRejected) {
  // Construct a cycle through raw cells: a NAND whose output feeds itself
  // via a buffer.
  NetlistBuilder b("cyc");
  const NetId a = b.input("a");
  const NetId loop = b.net("loop");
  const NetId y = b.nand2(a, loop);
  // Close the loop with a buffer driving the pre-allocated net.
  // NetlistBuilder has no generic "into" for buf, so use dff-free trick:
  // tribuf with constant enable onto the loop net.
  b.tribuf(b.const1(), y, loop);
  b.output("y", y);
  const Netlist nl = b.take();
  EXPECT_THROW(GateSim sim(nl), SimulationError);
}

TEST(GateSimTest, ForceInjectsStuckAt) {
  NetlistBuilder b("force");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  const NetId mid = b.and2(a, c);
  b.output("y", b.not_(mid));
  const Netlist nl = b.take();
  GateSim sim(nl);
  sim.set_input("a", true);
  sim.set_input("b", true);
  sim.eval();
  EXPECT_EQ(sim.output("y"), Logic4::Zero);
  sim.set_force(mid, Logic4::Zero);  // stuck-at-0 on the AND output
  sim.eval();
  EXPECT_EQ(sim.output("y"), Logic4::One);
  sim.clear_forces();
  sim.eval();
  EXPECT_EQ(sim.output("y"), Logic4::Zero);
}

TEST(GateSimTest, DepthReflectsLevelization) {
  NetlistBuilder b("depth");
  const NetId a = b.input("a");
  NetId x = a;
  for (int i = 0; i < 10; ++i) x = b.not_(x);
  b.output("y", x);
  GateSim sim(b.take());
  EXPECT_EQ(sim.depth(), 10u);
}

TEST(GateSimTest, UnknownInputNameThrows) {
  NetlistBuilder b("u");
  const NetId a = b.input("a");
  b.output("y", b.buf(a));
  GateSim sim(b.take());
  EXPECT_THROW(sim.set_input("nope", true), PreconditionError);
  EXPECT_THROW((void)sim.output("nope"), PreconditionError);
}

TEST(RawNetlist, FromRawValidates) {
  RawNetlist raw;
  raw.name = "raw";
  raw.n_nets = 2;
  raw.inputs.push_back(Port{"a", 0});
  raw.cells.push_back(Cell{CellKind::Not, {0, kNoNet, kNoNet}, 1});
  raw.outputs.push_back(Port{"y", 1});
  const Netlist nl = Netlist::from_raw(std::move(raw));
  EXPECT_EQ(nl.cell_count(), 1u);

  RawNetlist bad;
  bad.name = "bad";
  bad.n_nets = 1;
  bad.outputs.push_back(Port{"y", 0});  // undriven output
  EXPECT_THROW((void)Netlist::from_raw(std::move(bad)), InvariantError);
}

}  // namespace
}  // namespace casbus::netlist
