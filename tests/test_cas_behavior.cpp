// Behavioral CAS tests: the three functional modes of paper Fig. 4, the
// serial configuration protocol, and dynamic reconfiguration.

#include <gtest/gtest.h>

#include "core/cas_behavior.hpp"
#include "core/config_protocol.hpp"
#include "core/test_bus.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace casbus::tam {
namespace {

/// Single-CAS fixture on a fresh simulation.
struct CasFixture {
  sim::Simulation sim;
  CasBusChain chain;
  CasBehavior* cas;

  CasFixture(unsigned n, unsigned p) : chain(sim, n, "bus") {
    cas = &chain.add_cas("cas0", p);
    sim.reset();
    chain.head().set_all(Logic4::Zero);
    for (std::size_t j = 0; j < p; ++j) chain.cas_i(0)[j].set(false);
  }

  /// Shifts `code` into the CAS instruction register and pulses update.
  void configure(std::uint64_t code) {
    chain.config_wire().set(true);
    const BitVector stream =
        build_cas_config_stream(chain, {code});
    for (std::size_t b = 0; b < stream.size(); ++b) {
      chain.head()[0].set(stream.get(b));
      sim.step();
    }
    chain.update_wire().set(true);
    sim.step();
    chain.update_wire().set(false);
    chain.config_wire().set(false);
    sim.settle();
  }
};

TEST(CasBehavior, ResetsToBypass) {
  CasFixture f(4, 2);
  f.chain.head().set_uint(0b1010);
  f.sim.settle();
  EXPECT_EQ(f.cas->instruction(), InstructionSet::kBypassCode);
  EXPECT_EQ(f.chain.tail().to_uint(), 0b1010u);
  // Core-side outputs float in bypass.
  EXPECT_EQ(f.chain.cas_o(0)[0].get(), Logic4::Z);
  EXPECT_EQ(f.chain.cas_o(0)[1].get(), Logic4::Z);
}

TEST(CasBehavior, TestModeRoutesSelectedWires) {
  CasFixture f(4, 2);
  // Route port0 <- wire 2, port1 <- wire 0.
  const SwitchScheme scheme({2, 0}, 4);
  f.configure(f.cas->isa().encode(scheme));
  ASSERT_TRUE(f.cas->isa().is_test(f.cas->instruction()));

  f.chain.head().set_uint(0b0100);  // only wire 2 high
  f.chain.cas_i(0)[0].set(true);    // core responds on port 0
  f.chain.cas_i(0)[1].set(false);
  f.sim.settle();

  EXPECT_EQ(f.chain.cas_o(0)[0].get(), Logic4::One);   // o0 = e2
  EXPECT_EQ(f.chain.cas_o(0)[1].get(), Logic4::Zero);  // o1 = e0
  // Heuristic return: s2 = i0 = 1, s0 = i1 = 0; unselected wires bypass.
  EXPECT_EQ(f.chain.tail()[2].get(), Logic4::One);
  EXPECT_EQ(f.chain.tail()[0].get(), Logic4::Zero);
  EXPECT_EQ(f.chain.tail()[1].get(), Logic4::Zero);
  EXPECT_EQ(f.chain.tail()[3].get(), Logic4::Zero);

  f.chain.head().set_uint(0b1010);  // wires 1 and 3 high (both bypass)
  f.sim.settle();
  EXPECT_EQ(f.chain.tail()[1].get(), Logic4::One);
  EXPECT_EQ(f.chain.tail()[3].get(), Logic4::One);
}

TEST(CasBehavior, EveryTestCodeRoutesPerItsScheme) {
  // Property sweep: for N=4, P=2 every one of the 12 arrangements routes
  // exactly as its decoded scheme says.
  CasFixture f(4, 2);
  Rng rng(5);
  for (std::uint64_t code = InstructionSet::kFirstTestCode;
       code < f.cas->isa().m(); ++code) {
    f.cas->force_instruction(code);
    const SwitchScheme scheme = f.cas->isa().decode(code);
    for (int trial = 0; trial < 4; ++trial) {
      const auto e = static_cast<std::uint64_t>(rng.below(16));
      const auto i = static_cast<std::uint64_t>(rng.below(4));
      f.chain.head().set_uint(e);
      f.chain.cas_i(0).set_uint(i);
      f.sim.settle();
      for (unsigned j = 0; j < 2; ++j) {
        EXPECT_EQ(f.chain.cas_o(0)[j].get(),
                  to_logic(((e >> scheme.wire_of_port(j)) & 1ULL) != 0))
            << "code " << code << " port " << j;
      }
      for (unsigned w = 0; w < 4; ++w) {
        const auto port = scheme.port_of_wire(w);
        const bool expect = port.has_value() ? ((i >> *port) & 1ULL) != 0
                                             : ((e >> w) & 1ULL) != 0;
        EXPECT_EQ(f.chain.tail()[w].get(), to_logic(expect))
            << "code " << code << " wire " << w;
      }
    }
  }
}

TEST(CasBehavior, SerialConfigurationLoadsInstruction) {
  CasFixture f(4, 2);  // k = 4
  const std::uint64_t code = 0b1011;  // a TEST code (11 < m=14)
  ASSERT_TRUE(f.cas->isa().is_test(code));
  f.configure(code);
  EXPECT_EQ(f.cas->instruction(), code);
}

TEST(CasBehavior, ConfigModePresentsIrTailOnWire0) {
  CasFixture f(3, 1);  // k = 3
  f.chain.config_wire().set(true);
  // Shift 1,0,0: after 3 shifts the first 1 reaches the register tail.
  for (const bool bit : {true, false, false}) {
    f.chain.head()[0].set(bit);
    f.sim.step();
  }
  f.sim.settle();
  EXPECT_EQ(f.chain.tail()[0].get(), Logic4::One);
  // Wires 1..N-1 bypass during configuration.
  f.chain.head()[1].set(true);
  f.sim.settle();
  EXPECT_EQ(f.chain.tail()[1].get(), Logic4::One);
  // Core outputs float during configuration.
  EXPECT_EQ(f.chain.cas_o(0)[0].get(), Logic4::Z);
}

TEST(CasBehavior, InvalidCodeDegradesToBypass) {
  CasFixture f(4, 3);  // m = 26, k = 5 -> codes 26..31 are invalid
  // build_cas_config_stream rejects invalid codes, so shift raw bits.
  f.chain.config_wire().set(true);
  const std::uint64_t raw = 29;
  for (std::size_t b = 5; b-- > 0;) {
    f.chain.head()[0].set(((raw >> b) & 1ULL) != 0);
    f.sim.step();
  }
  f.chain.update_wire().set(true);
  f.sim.step();
  f.chain.update_wire().set(false);
  f.chain.config_wire().set(false);
  f.sim.settle();
  EXPECT_EQ(f.cas->instruction(), 29u);
  f.chain.head().set_uint(0b1001);
  f.sim.settle();
  EXPECT_EQ(f.chain.tail().to_uint(), 0b1001u);
  EXPECT_EQ(f.chain.cas_o(0)[0].get(), Logic4::Z);
}

TEST(CasBehavior, ChainedConfigurationProgramsAllCases) {
  // Three CASes with different geometries on one bus, configured in a
  // single shift session (paper: instruction registers daisy-chained on
  // wire e0/s0).
  sim::Simulation sim;
  CasBusChain chain(sim, 5, "bus");
  CasBehavior& c0 = chain.add_cas("c0", 1);  // k=3
  CasBehavior& c1 = chain.add_cas("c1", 2);  // k=5
  CasBehavior& c2 = chain.add_cas("c2", 3);  // k=6
  sim.reset();
  chain.head().set_all(Logic4::Zero);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t j = 0; j < chain.cas_i(c).size(); ++j)
      chain.cas_i(c)[j].set(false);

  EXPECT_EQ(chain.total_ir_bits(), 3u + 5u + 6u);

  const std::vector<std::uint64_t> codes = {4, 17, 2};
  for (std::size_t c = 0; c < 3; ++c)
    ASSERT_TRUE(chain.cas(c).isa().is_valid(codes[c]));

  chain.config_wire().set(true);
  const BitVector stream = build_cas_config_stream(chain, codes);
  EXPECT_EQ(stream.size(), chain.total_ir_bits());
  for (std::size_t b = 0; b < stream.size(); ++b) {
    chain.head()[0].set(stream.get(b));
    sim.step();
  }
  chain.update_wire().set(true);
  sim.step();
  chain.update_wire().set(false);
  chain.config_wire().set(false);
  sim.settle();

  EXPECT_EQ(c0.instruction(), codes[0]);
  EXPECT_EQ(c1.instruction(), codes[1]);
  EXPECT_EQ(c2.instruction(), codes[2]);
}

TEST(CasBehavior, ConfigInstructionKeepsCasInChain) {
  // CAS1 holds the CONFIGURATION instruction, CAS0 a bypass: only CAS1 is
  // reprogrammed by the next shift session even with the global config
  // wire low (dynamic partial reconfiguration, paper §4).
  sim::Simulation sim;
  CasBusChain chain(sim, 3, "bus");
  CasBehavior& c0 = chain.add_cas("c0", 1);
  CasBehavior& c1 = chain.add_cas("c1", 1);
  sim.reset();
  chain.head().set_all(Logic4::Zero);
  chain.cas_i(0)[0].set(false);
  chain.cas_i(1)[0].set(false);

  c0.force_instruction(InstructionSet::kBypassCode);
  c1.force_instruction(InstructionSet::kConfigCode);
  sim.settle();
  EXPECT_FALSE(c0.chain_active());
  EXPECT_TRUE(c1.chain_active());

  // Shift 3 bits (= k of c1): they travel through c0's bypass into c1's
  // instruction register directly.
  const std::uint64_t code = 3;  // TEST: wire 1 (rank 1 + 2)
  for (std::size_t j = 3; j-- > 0;) {
    chain.head()[0].set(((code >> j) & 1ULL) != 0);
    sim.step();
  }
  chain.update_wire().set(true);
  sim.step();
  chain.update_wire().set(false);
  sim.settle();

  EXPECT_EQ(c1.instruction(), code);
  EXPECT_EQ(c0.instruction(), InstructionSet::kBypassCode);
}

TEST(CasBehavior, ForceInstructionValidatesCode) {
  CasFixture f(3, 1);
  EXPECT_THROW(f.cas->force_instruction(f.cas->isa().m()),
               PreconditionError);
}

TEST(CasBusChainTest, GeometryChecks) {
  sim::Simulation sim;
  CasBusChain chain(sim, 4, "bus");
  EXPECT_THROW(chain.add_cas("bad", 0), PreconditionError);
  EXPECT_THROW(chain.add_cas("bad", 5), PreconditionError);
  EXPECT_EQ(chain.width(), 4u);
  EXPECT_EQ(chain.size(), 0u);
  // Tail of an empty chain is the head bundle.
  chain.head().set_uint(0b0110);
  EXPECT_EQ(chain.tail().to_uint(), 0b0110u);
}

TEST(ConfigProtocol, StreamOrderPutsFarCasFirst) {
  // Two registers of 2 bits each: codes 0b01 (near), 0b10 (far). The far
  // register's bits come first, each MSB-first.
  const BitVector s = build_config_stream(
      {ConfigEntry{2, 0b01}, ConfigEntry{2, 0b10}});
  EXPECT_EQ(s.to_string(), "1001");
  EXPECT_EQ(config_stream_length({ConfigEntry{2, 0}, ConfigEntry{3, 0}}),
            5u);
}

TEST(ConfigProtocol, RejectsOversizedCodes) {
  EXPECT_THROW(build_config_stream({ConfigEntry{2, 4}}), PreconditionError);
  EXPECT_THROW(build_config_stream({ConfigEntry{0, 0}}), PreconditionError);
}

TEST(ConfigProtocol, CasStreamValidatesGeometry) {
  sim::Simulation sim;
  CasBusChain chain(sim, 3, "bus");
  chain.add_cas("c0", 1);
  EXPECT_THROW((void)build_cas_config_stream(chain, {1, 2}),
               PreconditionError);
  EXPECT_THROW((void)build_cas_config_stream(chain, {99}),
               PreconditionError);
}

}  // namespace
}  // namespace casbus::tam
