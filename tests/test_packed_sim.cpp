/// \file test_packed_sim.cpp
/// Equivalence suite for the 64-wide bit-parallel simulation stack:
///   - word-plane operators vs the scalar Logic4 operators (exhaustive),
///   - PackedGateSim vs GateSim net-for-net over random netlists, random
///     four-state stimuli (X/Z injection included) and clocked sequences,
///   - lane-masked forces vs scalar set_force,
///   - netlist::FaultSim / tpg::FaultSimulator::run vs the serial
///     single-fault reference path.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "core/cas_generator.hpp"
#include "netlist/faultsim.hpp"
#include "netlist/gatesim.hpp"
#include "netlist/packed_gatesim.hpp"
#include "tpg/fault.hpp"
#include "tpg/synthcore.hpp"
#include "util/logic_word.hpp"
#include "util/rng.hpp"

namespace {

using namespace casbus;
using netlist::GateSim;
using netlist::PackedGateSim;

constexpr std::array<Logic4, 4> kAll = {Logic4::Zero, Logic4::One, Logic4::Z,
                                        Logic4::X};

/// Packs the same scalar into every lane and reads one lane back.
Logic4 lane0(Logic64 w) { return word_lane(w, 0); }

TEST(LogicWord, LaneRoundTrip) {
  Logic64 w = kWordAllZ;
  for (unsigned lane = 0; lane < 64; ++lane)
    w = word_set_lane(w, lane, kAll[lane % 4]);
  for (unsigned lane = 0; lane < 64; ++lane)
    EXPECT_EQ(word_lane(w, lane), kAll[lane % 4]) << "lane " << lane;
}

TEST(LogicWord, UnaryOpsMatchScalar) {
  for (const Logic4 a : kAll) {
    const Logic64 wa = word_broadcast(a);
    EXPECT_EQ(lane0(word_not(wa)), logic_not(a));
    EXPECT_EQ(lane0(word_buf(wa)), is01(a) ? a : Logic4::X);
    EXPECT_EQ(lane0(word_dff_capture(wa)), is01(a) ? a : Logic4::X);
    EXPECT_EQ(word_is0(wa) & 1ULL, a == Logic4::Zero ? 1ULL : 0ULL);
    EXPECT_EQ(word_is1(wa) & 1ULL, a == Logic4::One ? 1ULL : 0ULL);
    EXPECT_EQ(word_is01(wa) & 1ULL, is01(a) ? 1ULL : 0ULL);
  }
}

TEST(LogicWord, BinaryOpsMatchScalar) {
  for (const Logic4 a : kAll) {
    for (const Logic4 b : kAll) {
      const Logic64 wa = word_broadcast(a);
      const Logic64 wb = word_broadcast(b);
      EXPECT_EQ(lane0(word_and(wa, wb)), logic_and(a, b));
      EXPECT_EQ(lane0(word_or(wa, wb)), logic_or(a, b));
      EXPECT_EQ(lane0(word_xor(wa, wb)), logic_xor(a, b));
      EXPECT_EQ(lane0(word_xnor(wa, wb)), logic_not(logic_xor(a, b)));
      EXPECT_EQ(lane0(word_tribuf(wa, wb)), logic_tribuf(a, b));
      EXPECT_EQ(lane0(word_resolve(wa, wb)), resolve(a, b));
    }
  }
}

TEST(LogicWord, MuxMatchesScalar) {
  for (const Logic4 s : kAll)
    for (const Logic4 a : kAll)
      for (const Logic4 b : kAll)
        EXPECT_EQ(lane0(word_mux(word_broadcast(s), word_broadcast(a),
                                 word_broadcast(b))),
                  logic_mux(s, a, b))
            << "s=" << to_char(s) << " a=" << to_char(a)
            << " b=" << to_char(b);
}

TEST(LogicWord, Diff01IsTheDetectionCriterion) {
  for (const Logic4 a : kAll) {
    for (const Logic4 b : kAll) {
      const bool expect = is01(a) && is01(b) && a != b;
      EXPECT_EQ(word_diff01(word_broadcast(a), word_broadcast(b)) & 1ULL,
                expect ? 1ULL : 0ULL);
    }
  }
}

/// Draws a four-state value with driven levels dominating (like real
/// stimuli) but a solid share of X/Z injections.
Logic4 random_logic(Rng& rng) {
  const std::uint64_t r = rng.below(10);
  if (r < 4) return Logic4::Zero;
  if (r < 8) return Logic4::One;
  return r == 8 ? Logic4::X : Logic4::Z;
}

/// Runs packed-vs-scalar lock-step: packs 64 random stimulus lanes,
/// mirrors each lane in a scalar GateSim, and compares every net after
/// eval() and after each of \p ticks clock edges.
void check_equivalence(const netlist::Netlist& nl, std::uint64_t seed,
                       int ticks) {
  Rng rng(seed);
  const auto lev = netlist::levelize(nl);
  PackedGateSim packed(lev);
  std::vector<GateSim> scalar;
  for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane)
    scalar.emplace_back(lev);

  // Random per-lane inputs and flip-flop preloads, X/Z included.
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane) {
      const Logic4 v = random_logic(rng);
      packed.set_input_lane(i, lane, v);
      scalar[lane].set_input_index(i, v);
    }
  for (std::size_t i = 0; i < packed.dff_count(); ++i)
    for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane) {
      const Logic4 v = random_logic(rng);
      packed.set_dff_lane(i, lane, v);
      scalar[lane].set_dff_state(i, v);
    }

  const auto compare_all = [&](const char* stage) {
    for (netlist::NetId n = 0; n < nl.net_count(); ++n) {
      const Logic64 w = packed.net_value(n);
      for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane) {
        ASSERT_EQ(word_lane(w, lane), scalar[lane].net_value(n))
            << stage << ": net " << n << " lane " << lane << " seed "
            << seed;
      }
    }
  };

  packed.eval();
  for (auto& s : scalar) s.eval();
  compare_all("eval");

  for (int t = 0; t < ticks; ++t) {
    packed.tick();
    for (auto& s : scalar) s.tick();
    compare_all("tick");
  }
}

TEST(PackedGateSim, MatchesScalarOnRandomCores) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    tpg::SyntheticCoreSpec spec;
    spec.n_inputs = 6;
    spec.n_outputs = 5;
    spec.n_flipflops = 12;
    spec.n_gates = 80;
    spec.n_chains = 2;
    spec.seed = 1000 + seed;
    const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
    check_equivalence(core.netlist, seed, 3);
  }
}

TEST(PackedGateSim, MatchesScalarOnTriStateCas) {
  // Generated CAS switches are tribuf-heavy — the tri-state resolution and
  // Z propagation paths get real coverage here.
  for (const unsigned n : {4u, 6u}) {
    const tam::GeneratedCas gen = tam::generate_cas(
        n, n / 2, {tam::CasImplementation::OptimizedGateLevel, true});
    check_equivalence(gen.netlist, 77 + n, 2);
  }
}

TEST(PackedGateSim, LaneMaskedForcesMatchScalar) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 5;
  spec.n_outputs = 4;
  spec.n_flipflops = 8;
  spec.n_gates = 60;
  spec.seed = 4242;
  const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
  const auto lev = netlist::levelize(core.netlist);

  Rng rng(99);
  PackedGateSim packed(lev);
  std::vector<GateSim> scalar;
  std::vector<std::pair<netlist::NetId, bool>> lane_fault;
  for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane) {
    scalar.emplace_back(lev);
    lane_fault.emplace_back(
        static_cast<netlist::NetId>(rng.below(core.netlist.net_count())),
        rng.coin());
  }

  for (std::size_t i = 0; i < core.netlist.inputs().size(); ++i) {
    const Logic4 v = to_logic(rng.coin());
    packed.set_input_index(i, word_broadcast(v));
    for (auto& s : scalar) s.set_input_index(i, v);
  }
  for (std::size_t i = 0; i < packed.dff_count(); ++i) {
    const Logic4 v = to_logic(rng.coin());
    packed.set_dff_state(i, v);
    for (auto& s : scalar) s.set_dff_state(i, v);
  }
  for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane) {
    packed.set_force(lane_fault[lane].first,
                     to_logic(lane_fault[lane].second), 1ULL << lane);
    scalar[lane].set_force(lane_fault[lane].first,
                           to_logic(lane_fault[lane].second));
  }

  packed.eval();
  for (auto& s : scalar) s.eval();
  for (netlist::NetId n = 0; n < core.netlist.net_count(); ++n) {
    const Logic64 w = packed.net_value(n);
    for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane)
      ASSERT_EQ(word_lane(w, lane), scalar[lane].net_value(n))
          << "net " << n << " lane " << lane;
  }

  // clear_forces restores fault-free behavior.
  packed.clear_forces();
  scalar[0].clear_forces();
  packed.eval();
  scalar[0].eval();
  for (netlist::NetId n = 0; n < core.netlist.net_count(); ++n)
    ASSERT_EQ(word_lane(packed.net_value(n), 0), scalar[0].net_value(n));
}

TEST(PackedGateSim, ForcesOnTriStateNetsMatchScalar) {
  // The subtlest packed/scalar divergence point: a forced tri-state net.
  // The scalar simulator skips the driver write entirely ("stuck net stays
  // stuck") while the packed one resolves the drivers and then lane-blends
  // the forced value back in — the result must be lane-wise identical.
  const tam::GeneratedCas gen = tam::generate_cas(
      6, 3, {tam::CasImplementation::OptimizedGateLevel, true});
  const auto lev = netlist::levelize(gen.netlist);

  std::vector<netlist::NetId> tri_nets;
  for (netlist::NetId n = 0; n < gen.netlist.net_count(); ++n)
    if (lev->net_is_tri(n)) tri_nets.push_back(n);
  ASSERT_FALSE(tri_nets.empty()) << "CAS netlist should be tribuf-heavy";

  Rng rng(4711);
  PackedGateSim packed(lev);
  std::vector<GateSim> scalar;
  for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane)
    scalar.emplace_back(lev);

  for (std::size_t i = 0; i < gen.netlist.inputs().size(); ++i)
    for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane) {
      const Logic4 v = random_logic(rng);
      packed.set_input_lane(i, lane, v);
      scalar[lane].set_input_index(i, v);
    }
  for (std::size_t i = 0; i < packed.dff_count(); ++i)
    for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane) {
      const Logic4 v = to_logic(rng.coin());
      packed.set_dff_lane(i, lane, v);
      scalar[lane].set_dff_state(i, v);
    }

  // Each lane forces a different tri-state net to a random stuck value.
  for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane) {
    const netlist::NetId net = tri_nets[rng.below(tri_nets.size())];
    const Logic4 v = to_logic(rng.coin());
    packed.set_force(net, v, 1ULL << lane);
    scalar[lane].set_force(net, v);
  }

  packed.eval();
  for (auto& s : scalar) s.eval();
  for (netlist::NetId n = 0; n < gen.netlist.net_count(); ++n) {
    const Logic64 w = packed.net_value(n);
    for (unsigned lane = 0; lane < PackedGateSim::kLanes; ++lane)
      ASSERT_EQ(word_lane(w, lane), scalar[lane].net_value(n))
          << "net " << n << " lane " << lane;
  }
}

/// Runs event-driven vs full-sweep lock-step over \p steps rounds of
/// random incremental edits (partial input/DFF updates, X/Z included,
/// optional lane-masked forces) with interleaved eval()/tick(), comparing
/// every net after each pass. This is the byte-exactness contract of
/// EvalMode::EventDriven.
void check_event_equivalence(const netlist::Netlist& nl, std::uint64_t seed,
                             int steps, bool with_forces) {
  Rng rng(seed);
  const auto lev = netlist::levelize(nl);
  PackedGateSim sweep(lev, netlist::EvalMode::FullSweep);
  PackedGateSim event(lev, netlist::EvalMode::EventDriven);

  const auto compare_all = [&](int step) {
    for (netlist::NetId n = 0; n < nl.net_count(); ++n)
      ASSERT_EQ(event.net_value(n), sweep.net_value(n))
          << "net " << n << " step " << step << " seed " << seed;
  };

  std::vector<netlist::NetId> forced;
  for (int step = 0; step < steps; ++step) {
    // Edit a random subset of inputs and flip-flops (sparse on most
    // rounds — the regime event-driven evaluation exists for).
    const std::size_t n_edits = 1 + rng.below(3);
    for (std::size_t e = 0; e < n_edits; ++e) {
      if (!nl.inputs().empty() && rng.coin()) {
        const std::size_t i = rng.below(nl.inputs().size());
        const unsigned lane = static_cast<unsigned>(rng.below(64));
        const Logic4 v = random_logic(rng);
        sweep.set_input_lane(i, lane, v);
        event.set_input_lane(i, lane, v);
      } else if (sweep.dff_count() > 0) {
        const std::size_t i = rng.below(sweep.dff_count());
        const unsigned lane = static_cast<unsigned>(rng.below(64));
        const Logic4 v = random_logic(rng);
        sweep.set_dff_lane(i, lane, v);
        event.set_dff_lane(i, lane, v);
      }
    }
    if (with_forces) {
      if (!forced.empty() && rng.below(4) == 0) {
        sweep.clear_forces();
        event.clear_forces();
        forced.clear();
      } else if (rng.coin()) {
        const auto net =
            static_cast<netlist::NetId>(rng.below(nl.net_count()));
        const Logic4 v = to_logic(rng.coin());
        const std::uint64_t mask = 1ULL << rng.below(64);
        sweep.set_force(net, v, mask);
        event.set_force(net, v, mask);
        forced.push_back(net);
      }
    }

    if (rng.below(4) == 0) {
      sweep.tick();
      event.tick();
    } else {
      sweep.eval();
      event.eval();
    }
    compare_all(step);
  }
}

TEST(PackedGateSim, EventDrivenMatchesSweepOnRandomCores) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    tpg::SyntheticCoreSpec spec;
    spec.n_inputs = 6;
    spec.n_outputs = 5;
    spec.n_flipflops = 12;
    spec.n_gates = 80;
    spec.n_chains = 2;
    spec.seed = 2000 + seed;
    const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
    check_event_equivalence(core.netlist, seed, 40, false);
  }
}

TEST(PackedGateSim, EventDrivenMatchesSweepOnTriStateCasWithForces) {
  // Tri-state nets are the hard case: the event path rebuilds a wired net
  // from cached Tribuf outputs plus the sweep's seed/force semantics.
  for (const unsigned n : {4u, 6u}) {
    const tam::GeneratedCas gen = tam::generate_cas(
        n, n / 2, {tam::CasImplementation::OptimizedGateLevel, true});
    check_event_equivalence(gen.netlist, 500 + n, 30, true);
  }
}

TEST(PackedGateSim, EventDrivenMatchesSweepOnScanShift) {
  // Scan-shift stimulus: only the chain inputs change per cycle; event
  // mode must stay exact while touching a fraction of the design.
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 8;
  spec.n_outputs = 8;
  spec.n_flipflops = 32;
  spec.n_gates = 200;
  spec.n_chains = 2;
  spec.seed = 31337;
  const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
  const auto lev = netlist::levelize(core.netlist);

  PackedGateSim sweep(lev, netlist::EvalMode::FullSweep);
  PackedGateSim event(lev, netlist::EvalMode::EventDriven);
  const std::size_t se = lev->input_index("scan_en");

  Rng rng(9);
  for (std::size_t i = 0; i < core.netlist.inputs().size(); ++i) {
    const Logic4 v = to_logic(rng.coin());
    sweep.set_input_index(i, word_broadcast(v));
    event.set_input_index(i, word_broadcast(v));
  }
  sweep.set_input_index(se, word_broadcast(Logic4::One));
  event.set_input_index(se, word_broadcast(Logic4::One));

  for (int cycle = 0; cycle < 48; ++cycle) {
    for (std::size_t c = 0; c < core.chains.size(); ++c) {
      const std::size_t idx = lev->input_index("si" + std::to_string(c));
      const Logic4 v = to_logic(rng.coin());
      sweep.set_input_index(idx, word_broadcast(v));
      event.set_input_index(idx, word_broadcast(v));
    }
    sweep.tick();
    event.tick();
    for (netlist::NetId n = 0; n < core.netlist.net_count(); ++n)
      ASSERT_EQ(event.net_value(n), sweep.net_value(n))
          << "net " << n << " cycle " << cycle;
  }
  // The whole point: a shift cycle re-evaluates only the scan path.
  EXPECT_LT(event.stats().cell_evals, event.stats().sweep_cell_evals);
  EXPECT_LT(event.stats().activity(), 1.0);
  EXPECT_EQ(sweep.stats().activity(), 1.0);
}

TEST(PackedGateSim, ModeSwitchMidStreamStaysExact) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 5;
  spec.n_outputs = 4;
  spec.n_flipflops = 10;
  spec.n_gates = 70;
  spec.seed = 606;
  const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
  const auto lev = netlist::levelize(core.netlist);

  PackedGateSim sweep(lev);
  PackedGateSim flip(lev);  // toggles modes while running
  Rng rng(55);
  for (int step = 0; step < 24; ++step) {
    if (step % 6 == 0)
      flip.set_mode(step % 12 == 0 ? netlist::EvalMode::EventDriven
                                   : netlist::EvalMode::FullSweep);
    const std::size_t i = rng.below(core.netlist.inputs().size());
    const Logic4 v = random_logic(rng);
    sweep.set_input_index(i, word_broadcast(v));
    flip.set_input_index(i, word_broadcast(v));
    sweep.tick();
    flip.tick();
    for (netlist::NetId n = 0; n < core.netlist.net_count(); ++n)
      ASSERT_EQ(flip.net_value(n), sweep.net_value(n))
          << "net " << n << " step " << step;
  }
}

TEST(FaultSim, BatchDetectionMatchesSerialResimulation) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 6;
  spec.n_outputs = 6;
  spec.n_flipflops = 10;
  spec.n_gates = 70;
  spec.seed = 555;
  const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
  const auto faults = netlist::enumerate_stuck_at_faults(core.netlist);

  const auto lev = netlist::levelize(core.netlist);
  netlist::FaultSim fsim(lev);
  GateSim good(lev), bad(lev);

  Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<Logic4> in_vals(core.netlist.inputs().size());
    std::vector<Logic4> ff_vals(fsim.dff_count());
    for (std::size_t i = 0; i < in_vals.size(); ++i) {
      in_vals[i] = to_logic(rng.coin());
      fsim.set_input_index(i, in_vals[i]);
      good.set_input_index(i, in_vals[i]);
      bad.set_input_index(i, in_vals[i]);
    }
    for (std::size_t i = 0; i < ff_vals.size(); ++i) {
      ff_vals[i] = to_logic(rng.coin());
      fsim.set_dff_state(i, ff_vals[i]);
      good.set_dff_state(i, ff_vals[i]);
      bad.set_dff_state(i, ff_vals[i]);
    }
    good.clear_forces();
    good.eval();

    // Serial reference: re-simulate each fault one at a time.
    const auto& lev_dffs = lev->dff_cells();
    const auto serial_detects = [&](const netlist::StuckAtFault& f) {
      bad.clear_forces();
      bad.set_force(f.net, to_logic(f.stuck_one));
      bad.eval();
      const auto differs = [&](netlist::NetId net) {
        const Logic4 g = good.net_value(net), b = bad.net_value(net);
        return is01(g) && is01(b) && g != b;
      };
      for (const auto& p : core.netlist.outputs())
        if (differs(p.net)) return true;
      for (const auto id : lev_dffs)
        if (differs(core.netlist.cell(id).in[0])) return true;
      return false;
    };

    for (std::size_t base = 0; base < faults.size();
         base += netlist::FaultSim::kBatch) {
      const std::size_t count =
          std::min(netlist::FaultSim::kBatch, faults.size() - base);
      const std::uint64_t mask = fsim.detect_batch(&faults[base], count);
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ((mask >> i) & 1ULL,
                  serial_detects(faults[base + i]) ? 1ULL : 0ULL)
            << "trial " << trial << " fault " << (base + i) << " net "
            << faults[base + i].net << " sa"
            << (faults[base + i].stuck_one ? 1 : 0);
    }
  }
}

TEST(FaultSim, ScanOnlyObservationIgnoresPrimaryOutputs) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 4;
  spec.n_outputs = 4;
  spec.n_flipflops = 8;
  spec.n_gates = 50;
  spec.seed = 321;
  const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
  const auto lev = netlist::levelize(core.netlist);
  const auto faults = netlist::enumerate_stuck_at_faults(core.netlist);

  netlist::FaultSim all_obs(lev);
  netlist::FaultSim scan_obs(lev);
  scan_obs.set_observation(false, true);

  Rng rng(13);
  std::uint64_t any_all = 0, any_scan = 0;
  for (int trial = 0; trial < 8; ++trial) {
    for (std::size_t i = 0; i < core.netlist.inputs().size(); ++i) {
      const Logic4 v = to_logic(rng.coin());
      all_obs.set_input_index(i, v);
      scan_obs.set_input_index(i, v);
    }
    for (std::size_t i = 0; i < all_obs.dff_count(); ++i) {
      const Logic4 v = to_logic(rng.coin());
      all_obs.set_dff_state(i, v);
      scan_obs.set_dff_state(i, v);
    }
    const std::size_t count = std::min<std::size_t>(64, faults.size());
    const std::uint64_t a = all_obs.detect_batch(faults.data(), count);
    const std::uint64_t s = scan_obs.detect_batch(faults.data(), count);
    // Scan-only observation can never detect more than full observation.
    EXPECT_EQ(s & ~a, 0ULL);
    any_all |= a;
    any_scan |= s;
  }
  EXPECT_NE(any_all, 0ULL);
  EXPECT_NE(any_scan, 0ULL);
}

TEST(FaultSimulator, PackedRunMatchesSerialRun) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 6;
  spec.n_outputs = 6;
  spec.n_flipflops = 12;
  spec.n_gates = 90;
  spec.n_chains = 2;
  spec.seed = 808;
  const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);

  tpg::FaultSimulator fsim(core.netlist);
  fsim.pin_input("scan_en", false);
  const auto faults = tpg::enumerate_faults(core.netlist);

  Rng rng(17);
  const auto patterns = tpg::PatternSet::random(fsim.pattern_width(), 12, rng);

  const tpg::FaultSimReport packed = fsim.run(patterns, faults);
  const tpg::FaultSimReport serial = fsim.run_serial(patterns, faults);

  EXPECT_EQ(packed.total_faults, serial.total_faults);
  EXPECT_EQ(packed.detected, serial.detected);
  EXPECT_EQ(packed.detected_mask, serial.detected_mask);
  EXPECT_EQ(packed.per_pattern, serial.per_pattern);
  EXPECT_GT(packed.detected, 0u);
}

TEST(FaultSimulator, DetectsAgreesWithSerialCriterion) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 5;
  spec.n_outputs = 5;
  spec.n_flipflops = 8;
  spec.n_gates = 60;
  spec.seed = 914;
  const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);

  tpg::FaultSimulator fsim(core.netlist);
  const auto faults = tpg::enumerate_faults(core.netlist);
  Rng rng(23);
  const auto patterns = tpg::PatternSet::random(fsim.pattern_width(), 3, rng);

  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const BitVector good = fsim.good_response(patterns.at(p));
    for (std::size_t f = 0; f < faults.size(); f += 7) {
      // Serial criterion via two scalar simulations.
      tpg::FaultSimReport one;
      tpg::PatternSet single(patterns.width());
      single.add(patterns.at(p));
      const auto serial =
          fsim.run_serial(single, std::vector<tpg::Fault>{faults[f]});
      EXPECT_EQ(fsim.detects(patterns.at(p), faults[f]),
                serial.detected == 1)
          << "pattern " << p << " fault " << f;
    }
    (void)good;
  }
}

}  // namespace
