// SoC-level interconnect EXTEST: boundary-register stimulus/capture over
// the wrapper serial ring, with injected interconnect defects.

#include <gtest/gtest.h>

#include "soc/soc.hpp"
#include "soc/tester.hpp"

namespace casbus::soc {
namespace {

tpg::SyntheticCoreSpec spec_io(std::uint64_t seed, std::size_t ins,
                               std::size_t outs) {
  tpg::SyntheticCoreSpec s;
  s.n_inputs = ins;
  s.n_outputs = outs;
  s.n_flipflops = 8;
  s.n_gates = 30;
  s.n_chains = 1;
  s.seed = seed;
  return s;
}

std::unique_ptr<Soc> build_connected_soc() {
  SocBuilder b(4);
  b.add_scan_core("alpha", spec_io(1, 3, 3));
  b.add_scan_core("beta", spec_io(2, 4, 2));
  b.add_scan_core("gamma", spec_io(3, 2, 4));
  // A little network: alpha -> beta, alpha -> gamma, gamma -> beta,
  // beta -> alpha (a cycle is fine: boundary cells break it in EXTEST).
  b.connect("alpha", 0, "beta", 0);
  b.connect("alpha", 2, "gamma", 1);
  b.connect("gamma", 3, "beta", 2);
  b.connect("beta", 1, "alpha", 1);
  return b.build();
}

TEST(Extest, FaultFreeInterconnectPasses) {
  auto soc = build_connected_soc();
  SocTester tester(*soc);
  const ExtestResult r = tester.run_extest(6, 99);
  EXPECT_EQ(r.connections, 4u);
  EXPECT_EQ(r.vectors, 6u);
  EXPECT_TRUE(r.all_pass()) << r.failing.size() << " failing";
  EXPECT_GT(r.cycles, 0u);
}

TEST(Extest, DetectsEveryInjectedStuckConnection) {
  auto soc = build_connected_soc();
  SocTester tester(*soc);
  for (std::size_t c = 0; c < 4; ++c) {
    for (const bool stuck_one : {false, true}) {
      soc->interconnect()->clear_faults();
      soc->interconnect()->inject_stuck(c, stuck_one);
      const ExtestResult r = tester.run_extest(6, 1234 + c);
      ASSERT_EQ(r.failing.size(), 1u)
          << "connection " << c << " stuck-at-" << stuck_one;
      EXPECT_EQ(r.failing[0], c);
    }
  }
  soc->interconnect()->clear_faults();
  EXPECT_TRUE(tester.run_extest(4, 7).all_pass());
}

TEST(Extest, SingleVectorMayAliasButManyVectorsCannot) {
  // A stuck-at matches the stimulus about half the time on one vector;
  // with 8 random vectors the escape probability is ~2^-8 per connection.
  auto soc = build_connected_soc();
  SocTester tester(*soc);
  soc->interconnect()->inject_stuck(0, true);
  const ExtestResult r = tester.run_extest(8, 4242);
  EXPECT_FALSE(r.all_pass());
}

TEST(Extest, RequiresAnInterconnect) {
  SocBuilder b(3);
  b.add_scan_core("lonely", spec_io(9, 2, 2));
  auto soc = b.build();
  SocTester tester(*soc);
  EXPECT_THROW((void)tester.run_extest(), PreconditionError);
}

TEST(Extest, BuilderValidatesEndpoints) {
  {
    SocBuilder b(3);
    b.add_scan_core("a", spec_io(1, 2, 2));
    b.connect("a", 0, "nope", 0);
    EXPECT_THROW((void)b.build(), PreconditionError);
  }
  {
    SocBuilder b(3);
    b.add_scan_core("a", spec_io(1, 2, 2));
    b.add_scan_core("b", spec_io(2, 2, 2));
    b.connect("a", 5, "b", 0);  // source pin out of range
    EXPECT_THROW((void)b.build(), PreconditionError);
  }
}

TEST(Extest, FunctionalModeStillWorksAfterExtest) {
  // After an EXTEST session the wrappers return to Bypass and the
  // interconnect serves functional traffic again.
  auto soc = build_connected_soc();
  SocTester tester(*soc);
  (void)tester.run_extest(3, 5);
  tester.load_all_wrappers(p1500::WrapperInstr::Bypass);

  // Drive alpha's functional output path via its core (functional mode is
  // transparent); easiest check: interconnect copies wires combinationally.
  CoreInstance& alpha = soc->cores()[0];
  CoreInstance& beta = soc->cores()[1];
  // Manually drive alpha's sys_out (bypassing its core model) is not
  // possible — the wrapper drives it. Instead verify transparency: beta's
  // core_in follows whatever alpha's wrapper emits.
  soc->simulation().settle();
  const Logic4 src = alpha.sys_out[0]->get();
  EXPECT_EQ(beta.as_scan().terminals().func_in[0]->get(), src);
}

TEST(Extest, HierarchicalCoresShareTheRingWithoutBreakingSpans) {
  // A hierarchical core's children sit on the wrapper serial ring between
  // top-level wrappers; the EXTEST composite layout must account for
  // their boundary cells even though they are not interconnect endpoints.
  SocBuilder b(4);
  b.add_scan_core("left", spec_io(21, 2, 2));
  b.add_hierarchical_core("middle", 1, {{"kid", spec_io(22, 1, 1)}});
  b.add_scan_core("right", spec_io(23, 2, 2));
  // Acyclic at the core level (the synthetic clouds are combinational).
  b.connect("left", 0, "right", 1);
  b.connect("left", 1, "right", 0);
  auto soc = b.build();
  SocTester tester(*soc);
  const ExtestResult clean = tester.run_extest(5, 31);
  EXPECT_TRUE(clean.all_pass());

  soc->interconnect()->inject_stuck(1, false);
  const ExtestResult bad = tester.run_extest(5, 32);
  ASSERT_EQ(bad.failing.size(), 1u);
  EXPECT_EQ(bad.failing[0], 1u);
}

TEST(Extest, MemoryCoreCanBeAnEndpoint) {
  SocBuilder b(3);
  b.add_scan_core("logic", spec_io(4, 2, 2));
  b.add_memory_core("ram", 8, 4);
  // logic.out0 -> ram.we (sys_in[0]).
  b.connect("logic", 0, "ram", 0);
  auto soc = b.build();
  SocTester tester(*soc);
  const ExtestResult r = tester.run_extest(5, 11);
  EXPECT_TRUE(r.all_pass());
}

}  // namespace
}  // namespace casbus::soc
