// The design-space exploration subsystem: generator determinism and
// population shape, branch-and-bound optimality against exact_schedule,
// lower-bound admissibility, and the Pareto sweep.

#include <gtest/gtest.h>

#include "explore/branch_bound.hpp"
#include "explore/explorer.hpp"
#include "explore/soc_generator.hpp"
#include "floor/job.hpp"
#include "sched/exact.hpp"
#include "sched/lower_bound.hpp"
#include "util/rng.hpp"

namespace casbus::explore {
namespace {

bool same_spec(const sched::CoreTestSpec& a, const sched::CoreTestSpec& b) {
  return a.name == b.name && a.chains == b.chains &&
         a.patterns == b.patterns && a.bist_cycles == b.bist_cycles;
}

TEST(SocGenerator, SameSeedSameSpecAcrossProfiles) {
  for (std::size_t p = 0; p < kProfileCount; ++p) {
    const auto profile = static_cast<SocProfile>(p);
    const GeneratedSoc a = SocGenerator(7).generate(40, profile, 3);
    const GeneratedSoc b = SocGenerator(7).generate(40, profile, 3);
    ASSERT_EQ(a.cores.size(), b.cores.size()) << profile_name(profile);
    for (std::size_t i = 0; i < a.cores.size(); ++i)
      EXPECT_TRUE(same_spec(a.cores[i], b.cores[i]))
          << profile_name(profile) << " core " << i;
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.suggested_width, b.suggested_width);
  }
}

TEST(SocGenerator, DifferentSeedOrInstanceDiffer) {
  const GeneratedSoc base = SocGenerator(7).generate(40, SocProfile::Mixed);
  const GeneratedSoc seed = SocGenerator(8).generate(40, SocProfile::Mixed);
  const GeneratedSoc inst =
      SocGenerator(7).generate(40, SocProfile::Mixed, 1);
  const auto differs = [&](const GeneratedSoc& other) {
    if (base.cores.size() != other.cores.size()) return true;
    for (std::size_t i = 0; i < base.cores.size(); ++i)
      if (!same_spec(base.cores[i], other.cores[i])) return true;
    return false;
  };
  EXPECT_TRUE(differs(seed));
  EXPECT_TRUE(differs(inst));
}

TEST(SocGenerator, ProfilesShapeThePopulation) {
  const SocGenerator gen(11);
  const GeneratedSoc scan = gen.generate(200, SocProfile::ScanHeavy);
  const GeneratedSoc bist = gen.generate(200, SocProfile::BistHeavy);
  const GeneratedSoc hier = gen.generate(200, SocProfile::Hierarchical);

  EXPECT_GT(scan.scan_core_count(), scan.cores.size() * 4 / 5);
  EXPECT_GT(bist.bist_core_count(), bist.cores.size() / 2);
  // Clusters collapse leaves into aggregate cores.
  EXPECT_LT(hier.cores.size(), hier.requested_cores);

  // Every generated core is schedulable.
  for (const GeneratedSoc* soc : {&scan, &bist, &hier})
    for (const auto& c : soc->cores) {
      EXPECT_TRUE(c.is_scan() || c.bist_cycles > 0) << c.name;
      if (c.is_scan()) {
        EXPECT_GT(c.patterns, 0u) << c.name;
      }
    }
}

TEST(SocGenerator, ScalesToAThousandCores) {
  const GeneratedSoc soc = SocGenerator(1).generate(1000, SocProfile::Mixed);
  EXPECT_EQ(soc.cores.size(), 1000u);
  EXPECT_GE(soc.suggested_width, 8u);
  EXPECT_LE(soc.suggested_width, 64u);
  // The spec list must price without arrangement-count overflow.
  const sched::SessionScheduler s(soc.cores, soc.suggested_width);
  EXPECT_GT(s.reconfig_cost(), 0u);
}

TEST(LowerBound, AdmissibleAgainstEveryStrategy) {
  Rng rng(53);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<sched::CoreTestSpec> cores;
    const std::size_t n = 3 + rng.below(5);
    for (std::size_t i = 0; i < n; ++i) {
      sched::CoreTestSpec c;
      c.name = "c" + std::to_string(i);
      const std::size_t chains = 1 + rng.below(3);
      for (std::size_t k = 0; k < chains; ++k)
        c.chains.push_back(10 + rng.below(150));
      c.patterns = 10 + rng.below(200);
      cores.push_back(std::move(c));
    }
    if (rng.coin()) cores.push_back({"b", {}, 0, 1000 + rng.below(5000)});

    const auto width = static_cast<unsigned>(2 + rng.below(5));
    const sched::SessionScheduler s(cores, width);
    const std::uint64_t lb =
        sched::schedule_lower_bound(cores, width, s.reconfig_cost());
    for (const sched::Strategy strategy :
         {sched::Strategy::Single, sched::Strategy::PerCore,
          sched::Strategy::Greedy, sched::Strategy::Phased,
          sched::Strategy::Best})
      EXPECT_LE(lb, s.schedule_with(strategy).total_cycles)
          << "trial " << trial << " " << sched::strategy_name(strategy);
    EXPECT_LE(lb, sched::exact_schedule(s).schedule.total_cycles)
        << "trial " << trial;
  }
}

TEST(BranchBound, MatchesExactOptimumOnSmallInstances) {
  Rng rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<sched::CoreTestSpec> cores;
    const std::size_t n = 3 + rng.below(6);  // 3..8 scan cores
    for (std::size_t i = 0; i < n; ++i) {
      sched::CoreTestSpec c;
      c.name = "c" + std::to_string(i);
      const std::size_t chains = 1 + rng.below(3);
      for (std::size_t k = 0; k < chains; ++k)
        c.chains.push_back(10 + rng.below(120));
      c.patterns = 10 + rng.below(200);
      cores.push_back(std::move(c));
    }
    if (rng.coin()) cores.push_back({"b", {}, 0, 500 + rng.below(3000)});

    const auto width = static_cast<unsigned>(2 + rng.below(5));
    const sched::SessionScheduler s(cores, width);
    const sched::ExactResult exact = sched::exact_schedule(s);
    const BranchBoundResult bb = BranchBoundScheduler(s).run();

    EXPECT_TRUE(bb.optimal) << "trial " << trial;
    EXPECT_EQ(bb.best_cost, exact.schedule.total_cycles)
        << "trial " << trial;
    EXPECT_EQ(bb.best_cost, bb.lower_bound) << "trial " << trial;
    EXPECT_DOUBLE_EQ(bb.gap(), 0.0) << "trial " << trial;
    EXPECT_EQ(bb.schedule.total_cycles, bb.best_cost);
    EXPECT_TRUE(bb.schedule.chip_synchronous);
  }
}

TEST(BranchBound, CoversEveryCoreExactlyOnce) {
  const GeneratedSoc soc = SocGenerator(3).generate(30, SocProfile::Mixed);
  const sched::SessionScheduler s(soc.cores, soc.suggested_width);
  BranchBoundConfig config;
  config.node_budget = 2000;
  const BranchBoundResult bb = BranchBoundScheduler(s, config).run();

  std::vector<int> seen(soc.cores.size(), 0);
  for (const auto& session : bb.schedule.sessions) {
    for (const std::size_t c : session.scan_cores) ++seen[c];
    for (const std::size_t c : session.bist_cores) ++seen[c];
  }
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "core " << i;
}

TEST(BranchBound, BudgetedSearchReportsACertifiedGap) {
  const GeneratedSoc soc = SocGenerator(5).generate(100, SocProfile::Mixed);
  const sched::SessionScheduler s(soc.cores, soc.suggested_width);
  BranchBoundConfig config;
  config.node_budget = 500;
  config.dive_interval = 128;
  const BranchBoundResult bb = BranchBoundScheduler(s, config).run();

  EXPECT_LE(bb.nodes_expanded, config.node_budget);
  EXPECT_GT(bb.lower_bound, 0u);
  EXPECT_GE(bb.best_cost, bb.lower_bound);
  EXPECT_GE(bb.gap(), 0.0);
  // The incumbent must also respect the strategy-independent bound.
  EXPECT_GE(bb.best_cost, sched::schedule_lower_bound(
                              soc.cores, s.width(), s.reconfig_cost()));
}

TEST(BranchBound, PureBistInstanceIsTriviallyOptimal) {
  std::vector<sched::CoreTestSpec> cores = {
      {"a", {}, 0, 4000}, {"b", {}, 0, 2000}, {"c", {}, 0, 1000}};
  const sched::SessionScheduler s(cores, 4);
  const BranchBoundResult bb = BranchBoundScheduler(s).run();
  EXPECT_TRUE(bb.optimal);
  EXPECT_EQ(bb.best_cost, s.single_session().total_cycles);
}

TEST(BranchBound, PureBistChunksByLengthNotInputOrder) {
  // Interleaved long/short engines on a narrow bus: input-order chunking
  // (single_session) pairs each long engine with a short one, paying the
  // long session twice. The optimal certificate must pair likes with
  // likes.
  std::vector<sched::CoreTestSpec> cores = {{"a", {}, 0, 100},
                                            {"b", {}, 0, 1},
                                            {"c", {}, 0, 100},
                                            {"d", {}, 0, 1}};
  const sched::SessionScheduler s(cores, 2);
  const BranchBoundResult bb = BranchBoundScheduler(s).run();
  const std::uint64_t config = s.reconfig_cost();
  EXPECT_TRUE(bb.optimal);
  EXPECT_EQ(bb.best_cost, 100 + 1 + 2 * config);  // {a,c} then {b,d}
  EXPECT_LT(bb.best_cost, s.single_session().total_cycles);
  EXPECT_EQ(sched::exact_schedule(s).schedule.total_cycles, bb.best_cost);
}

TEST(Strategy, NewNamesRoundTripAndDispatch) {
  EXPECT_EQ(sched::strategy_from_name("branch_bound"),
            sched::Strategy::BranchBound);
  EXPECT_EQ(sched::strategy_from_name("exact"), sched::Strategy::Exact);

  Rng rng(71);
  std::vector<sched::CoreTestSpec> cores;
  for (int i = 0; i < 5; ++i) {
    sched::CoreTestSpec c;
    c.name = "c" + std::to_string(i);
    c.chains.push_back(20 + rng.below(100));
    c.patterns = 20 + rng.below(100);
    cores.push_back(std::move(c));
  }
  const sched::SessionScheduler s(cores, 3);
  EXPECT_EQ(s.schedule_with(sched::Strategy::Exact).total_cycles,
            sched::exact_schedule(s).schedule.total_cycles);
  EXPECT_EQ(s.schedule_with(sched::Strategy::BranchBound).total_cycles,
            BranchBoundScheduler(s).run().best_cost);
}

TEST(Explorer, SweepProducesAConsistentParetoFrontier) {
  const GeneratedSoc soc = SocGenerator(9).generate(20, SocProfile::Mixed);
  DesignSpaceExplorer explorer(soc);
  ExploreConfig config;
  config.widths = {4, 6};
  config.strategies = {sched::Strategy::Greedy,
                       sched::Strategy::BranchBound};
  config.branch_bound.node_budget = 2000;
  const ExploreReport report = explorer.sweep(config);

  ASSERT_EQ(report.points.size(), 4u);
  bool any_pareto = false;
  for (const ExplorePoint& p : report.points) {
    EXPECT_GT(p.test_cycles, 0u);
    EXPECT_GT(p.bus_area_ge, 0.0);
    EXPECT_GE(p.gap, 0.0);
    any_pareto |= p.pareto;
    // A pareto point must not be dominated.
    if (p.pareto) {
      for (const ExplorePoint& q : report.points)
        EXPECT_FALSE(q.test_cycles < p.test_cycles &&
                     q.bus_area_ge < p.bus_area_ge);
    }
  }
  EXPECT_TRUE(any_pareto);
  ASSERT_NE(report.best_time(), nullptr);

  // Wider bus, bigger CAS-BUS: the §3.2 overhead axis.
  EXPECT_GT(DesignSpaceExplorer::bus_area_ge(soc.cores, 6),
            DesignSpaceExplorer::bus_area_ge(soc.cores, 4));
}

TEST(Explorer, FloorJobsFromGeneratorRunEndToEnd) {
  // The generator's floor mapping exercises BranchBound / Exact through
  // the whole compile-and-simulate pipeline.
  const SocGenerator gen(13);
  const std::vector<floor::JobSpec> jobs =
      gen.floor_jobs(6, SocProfile::Mixed);
  ASSERT_EQ(jobs.size(), 6u);
  bool ran_search_strategy = false;
  for (const floor::JobSpec& spec : jobs) {
    const floor::JobResult result = floor::run_job(spec);
    EXPECT_TRUE(result.pass) << "job " << spec.id << ": " << result.error;
    ran_search_strategy |= spec.strategy == sched::Strategy::BranchBound ||
                           spec.strategy == sched::Strategy::Exact;
  }
  EXPECT_TRUE(ran_search_strategy);
}

}  // namespace
}  // namespace casbus::explore
