// Tests for the logic optimizer: specific rewrites plus a randomized
// behavioral-equivalence property suite.

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/gatesim.hpp"
#include "netlist/opt.hpp"
#include "tpg/synthcore.hpp"
#include "util/rng.hpp"

namespace casbus::netlist {
namespace {

TEST(Optimize, ConstantFoldsAndChain) {
  NetlistBuilder b("fold");
  const NetId a = b.input("a");
  const NetId one = b.const1();
  const NetId zero = b.const0();
  // y = (a & 1) | 0  ->  a
  b.output("y", b.or2(b.and2(a, one), zero));
  const Netlist opt = optimize(b.take());
  // Everything folds away: output reads the input net directly.
  EXPECT_EQ(opt.cell_count(), 0u);
  EXPECT_EQ(opt.outputs()[0].net, opt.inputs()[0].net);
}

TEST(Optimize, DoubleNegationCollapses) {
  NetlistBuilder b("dneg");
  const NetId a = b.input("a");
  b.output("y", b.not_(b.not_(a)));
  const Netlist opt = optimize(b.take());
  EXPECT_EQ(opt.cell_count(), 0u);
}

TEST(Optimize, XorWithConstOneBecomesNot) {
  NetlistBuilder b("x1");
  const NetId a = b.input("a");
  b.output("y", b.xor2(a, b.const1()));
  const Netlist opt = optimize(b.take());
  ASSERT_EQ(opt.cell_count(), 1u);
  EXPECT_EQ(opt.cells()[0].kind, CellKind::Not);
}

TEST(Optimize, SharesStructuralDuplicates) {
  NetlistBuilder b("cse");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  // Two identical ANDs (one with swapped inputs: commutative match) feeding
  // an XOR -> XOR(x, x) -> constant 0.
  const NetId x1 = b.and2(a, c);
  const NetId x2 = b.and2(c, a);
  b.output("y", b.xor2(x1, x2));
  const Netlist opt = optimize(b.take());
  // y must be the constant 0 cell only.
  ASSERT_EQ(opt.cell_count(), 1u);
  EXPECT_EQ(opt.cells()[0].kind, CellKind::Const0);
}

TEST(Optimize, DeadLogicEliminated) {
  NetlistBuilder b("dce");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  (void)b.xor2(b.and2(a, c), c);  // unread cone
  b.output("y", b.not_(a));
  const Netlist opt = optimize(b.take());
  EXPECT_EQ(opt.cell_count(), 1u);
}

TEST(Optimize, MuxConstantSelect) {
  NetlistBuilder b("muxk");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  b.output("y", b.mux2(b.const1(), a, c));  // always selects b
  const Netlist opt = optimize(b.take());
  EXPECT_EQ(opt.cell_count(), 0u);
  EXPECT_EQ(opt.outputs()[0].net, opt.inputs()[1].net);
}

TEST(Optimize, KeepsSequentialCells) {
  NetlistBuilder b("seq");
  const NetId a = b.input("a");
  b.output("q", b.dff(b.and2(a, b.const1())));
  const Netlist opt = optimize(b.take());
  EXPECT_EQ(opt.dff_count(), 1u);
}

TEST(Optimize, PreservesPortOrderAndNames) {
  NetlistBuilder b("ports");
  const NetId a = b.input("first");
  const NetId c = b.input("second");
  b.output("out0", b.and2(a, c));
  b.output("out1", b.or2(a, c));
  const Netlist opt = optimize(b.take());
  EXPECT_EQ(opt.inputs()[0].name, "first");
  EXPECT_EQ(opt.inputs()[1].name, "second");
  EXPECT_EQ(opt.outputs()[0].name, "out0");
  EXPECT_EQ(opt.outputs()[1].name, "out1");
}

/// Property: optimization preserves the sequential behavior of random
/// synthetic cores over random stimulus, cycle by cycle.
class OptimizeEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeEquivalence, RandomCoreUnchangedByOptimization) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 6;
  spec.n_outputs = 5;
  spec.n_flipflops = 8;
  spec.n_gates = 60;
  spec.n_chains = 2;
  spec.seed = GetParam();
  const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
  const Netlist opt = optimize(core.netlist);
  EXPECT_LE(opt.cell_count(), core.netlist.cell_count());

  GateSim ref(core.netlist);
  GateSim dut(opt);
  ref.reset();
  dut.reset();

  Rng rng(spec.seed * 77 + 1);
  for (int cycle = 0; cycle < 64; ++cycle) {
    for (const auto& port : core.netlist.inputs()) {
      const bool v = rng.coin();
      ref.set_input(port.name, v);
      dut.set_input(port.name, v);
    }
    ref.eval();
    dut.eval();
    for (const auto& port : core.netlist.outputs()) {
      EXPECT_EQ(ref.output(port.name), dut.output(port.name))
          << "seed " << spec.seed << " cycle " << cycle << " port "
          << port.name;
    }
    ref.tick();
    dut.tick();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace casbus::netlist
