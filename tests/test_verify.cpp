/// Tests for the static verification layer (src/verify/): the rule
/// catalogue, the netlist linter, the schedule linter, and the negative-
/// test generator — seeded mutation helpers that break a known-good design
/// one rule at a time and assert the linter reports exactly that rule.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "core/casbus_netlist.hpp"
#include "core/complete_tam.hpp"
#include "explore/branch_bound.hpp"
#include "explore/soc_generator.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "tpg/synthcore.hpp"
#include "verify/netlist_lint.hpp"
#include "verify/schedule_lint.hpp"

namespace {

using namespace casbus;
using netlist::Cell;
using netlist::CellId;
using netlist::CellKind;
using netlist::NetId;
using netlist::RawNetlist;
using verify::LintReport;
using verify::RuleId;

// ---------------------------------------------------------------------------
// Shared fixtures: a known-good scan core and its lint configuration.
// ---------------------------------------------------------------------------

tpg::SyntheticCore clean_core() {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 4;
  spec.n_outputs = 4;
  spec.n_flipflops = 12;
  spec.n_gates = 48;
  spec.n_chains = 2;
  spec.seed = 77;
  return tpg::make_synthetic_core(spec);
}

verify::NetlistLintConfig chain_config(const tpg::SyntheticCore& core) {
  verify::NetlistLintConfig config;
  for (std::size_t c = 0; c < core.chains.size(); ++c)
    config.scan_chains.push_back(verify::ScanChainSpec{
        "si" + std::to_string(c), "so" + std::to_string(c),
        core.chains[c].size()});
  return config;
}

/// The set of distinct rules among the report's *error*-grade findings —
/// the exactness assertion of the negative tests (warnings from knock-on
/// effects, e.g. a gate orphaned by a retargeted pin, are tolerated).
std::set<RuleId> error_rules(const LintReport& report) {
  std::set<RuleId> rules;
  for (const verify::Diagnostic& d : report.diagnostics)
    if (d.severity == verify::Severity::Error) rules.insert(d.rule);
  return rules;
}

/// First cloud gate: a 2-input combinational cell that is neither part of
/// the scan path (Mux2 scan side, flip-flops) nor a tri-state driver.
CellId find_cloud_gate(const RawNetlist& raw) {
  for (CellId id = 0; id < raw.cells.size(); ++id) {
    const CellKind k = raw.cells[id].kind;
    if (k == CellKind::And2 || k == CellKind::Or2 || k == CellKind::Xor2 ||
        k == CellKind::Nand2 || k == CellKind::Nor2 ||
        k == CellKind::Xnor2)
      return id;
  }
  ADD_FAILURE() << "no cloud gate in fixture";
  return 0;
}

/// First scan-path mux: a Mux2 whose output feeds a flip-flop's D pin.
CellId find_scan_mux(const RawNetlist& raw) {
  for (CellId id = 0; id < raw.cells.size(); ++id) {
    if (raw.cells[id].kind != CellKind::Mux2) continue;
    for (const Cell& c : raw.cells)
      if (netlist::is_sequential(c.kind) && c.in[0] == raw.cells[id].out)
        return id;
  }
  ADD_FAILURE() << "no scan mux in fixture";
  return 0;
}

// ---------------------------------------------------------------------------
// Rule catalogue.
// ---------------------------------------------------------------------------

TEST(VerifyReport, RuleIdsAreStableAndUnique) {
  std::set<std::string> ids, names;
  for (std::size_t r = 0; r < verify::kRuleCount; ++r) {
    ids.insert(verify::rule_id(static_cast<RuleId>(r)));
    names.insert(verify::rule_name(static_cast<RuleId>(r)));
  }
  EXPECT_EQ(ids.size(), verify::kRuleCount);
  EXPECT_EQ(names.size(), verify::kRuleCount);
  EXPECT_STREQ(verify::rule_id(RuleId::NetMultiDriver), "NL001");
  EXPECT_STREQ(verify::rule_id(RuleId::BoundIncoherent), "SC006");
}

TEST(VerifyReport, OnlyDeadLogicAndFanoutAreWarnings) {
  for (std::size_t r = 0; r < verify::kRuleCount; ++r) {
    const auto rule = static_cast<RuleId>(r);
    const bool warning =
        rule == RuleId::GateUnreachable || rule == RuleId::NetFanout;
    EXPECT_EQ(verify::rule_severity(rule) == verify::Severity::Warning,
              warning)
        << verify::rule_id(rule);
  }
}

TEST(VerifyReport, SummaryAndCountsFoldDiagnostics) {
  LintReport report;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.summary(), "verify: clean");
  report.add(RuleId::NetMultiDriver, 7, "x");
  report.add(RuleId::NetMultiDriver, 9, "y");
  report.add(RuleId::GateUnreachable, 3, "z");
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.admissible());
  EXPECT_EQ(report.error_count(), 2u);
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_EQ(report.count(RuleId::NetMultiDriver), 2u);
  EXPECT_EQ(report.summary(), "verify: NL001 x2, NL004 x1");
}

// ---------------------------------------------------------------------------
// Clean designs: zero diagnostics over everything the generators emit.
// ---------------------------------------------------------------------------

TEST(VerifyNetlist, CleanScanCoresLintClean) {
  for (const std::uint64_t seed : {1u, 17u, 99u}) {
    for (const std::size_t chains : {1u, 2u, 3u}) {
      tpg::SyntheticCoreSpec spec;
      spec.n_flipflops = 10 + 2 * chains;
      spec.n_gates = 40;
      spec.n_chains = chains;
      spec.seed = seed;
      const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
      const LintReport report =
          verify::lint_netlist(core.netlist, chain_config(core));
      EXPECT_TRUE(report.clean()) << "seed " << seed << " chains " << chains
                                  << "\n" << report.to_string();
    }
  }
}

TEST(VerifyNetlist, OptimizedCasBusAndCompleteTamLintClean) {
  tam::CasBusNetlistSpec bus_spec;
  bus_spec.width = 6;
  bus_spec.ports_per_cas = {2, 3, 1};
  bus_spec.run_optimizer = true;
  const LintReport bus =
      verify::lint_netlist(tam::generate_casbus_netlist(bus_spec).netlist);
  EXPECT_TRUE(bus.clean()) << bus.to_string();

  tam::CompleteTamSpec tam_spec;
  tam_spec.width = 4;
  for (const unsigned chains : {2u, 1u}) {
    p1500::WrapperSpec w;
    w.n_func_in = 2;
    w.n_func_out = 2;
    w.n_chains = chains;
    tam_spec.wrappers.push_back(w);
  }
  const LintReport tam =
      verify::lint_netlist(generate_complete_tam(tam_spec).netlist);
  EXPECT_TRUE(tam.clean()) << tam.to_string();
}

TEST(VerifyNetlist, UnoptimizedCasDecodeDeadLogicIsWarningOnly) {
  tam::CasBusNetlistSpec spec;
  spec.width = 4;
  spec.ports_per_cas = {2, 1};
  spec.run_optimizer = false;  // decoder keeps dead comparator terms
  const LintReport report =
      verify::lint_netlist(tam::generate_casbus_netlist(spec).netlist);
  EXPECT_TRUE(report.admissible()) << report.to_string();
  EXPECT_TRUE(report.has(RuleId::GateUnreachable));
}

// ---------------------------------------------------------------------------
// Negative-test generator: one mutation, exactly one rule.
// ---------------------------------------------------------------------------

TEST(VerifyNetlist, MutationSparePinIsExactlyNl000) {
  const tpg::SyntheticCore core = clean_core();
  RawNetlist raw = core.netlist.to_raw();
  raw.cells[find_cloud_gate(raw)].in[2] = 0;  // connect the spare pin
  const LintReport report = verify::lint_netlist(raw, chain_config(core));
  EXPECT_EQ(error_rules(report),
            std::set<RuleId>{RuleId::NetlistMalformed});
}

TEST(VerifyNetlist, MutationExtraDriverIsExactlyNl001) {
  const tpg::SyntheticCore core = clean_core();
  RawNetlist raw = core.netlist.to_raw();
  // A second plain driver onto the first output port's net.
  raw.cells.push_back(Cell{CellKind::Buf,
                           {raw.inputs[0].net, netlist::kNoNet,
                            netlist::kNoNet},
                           raw.outputs[0].net});
  const LintReport report = verify::lint_netlist(raw, chain_config(core));
  EXPECT_EQ(error_rules(report), std::set<RuleId>{RuleId::NetMultiDriver});
}

TEST(VerifyNetlist, MutationDroppedDriverIsExactlyNl002) {
  const tpg::SyntheticCore core = clean_core();
  RawNetlist raw = core.netlist.to_raw();
  // Retarget one cloud-gate input to a fresh net nothing drives.
  const CellId gate = find_cloud_gate(raw);
  raw.cells[gate].in[0] = static_cast<NetId>(raw.n_nets);
  ++raw.n_nets;
  const LintReport report = verify::lint_netlist(raw, chain_config(core));
  EXPECT_EQ(error_rules(report),
            std::set<RuleId>{RuleId::NetFloatingInput});
}

TEST(VerifyNetlist, MutationSplicedCycleIsExactlyNl003) {
  const tpg::SyntheticCore core = clean_core();
  RawNetlist raw = core.netlist.to_raw();
  const CellId gate = find_cloud_gate(raw);
  raw.cells[gate].in[0] = raw.cells[gate].out;  // self-loop
  const LintReport report = verify::lint_netlist(raw, chain_config(core));
  EXPECT_EQ(error_rules(report), std::set<RuleId>{RuleId::CombCycle});
  // The cycle finder names the loop.
  const std::vector<CellId> cycle = verify::find_comb_cycle(raw);
  ASSERT_EQ(cycle.size(), 1u);
  EXPECT_EQ(cycle[0], gate);
}

TEST(VerifyNetlist, MutationOrphanGateIsNl004WarningOnly) {
  const tpg::SyntheticCore core = clean_core();
  RawNetlist raw = core.netlist.to_raw();
  // A gate driving a net nothing reads: dead logic, not an error.
  raw.cells.push_back(Cell{CellKind::And2,
                           {raw.inputs[0].net, raw.inputs[1].net,
                            netlist::kNoNet},
                           static_cast<NetId>(raw.n_nets)});
  ++raw.n_nets;
  const LintReport report = verify::lint_netlist(raw, chain_config(core));
  EXPECT_TRUE(report.admissible());
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.count(RuleId::GateUnreachable), 1u);
  EXPECT_TRUE(error_rules(report).empty());

  verify::NetlistLintConfig no_sweep = chain_config(core);
  no_sweep.check_unreachable = false;
  EXPECT_TRUE(verify::lint_netlist(raw, no_sweep).clean());
}

TEST(VerifyNetlist, MutationDanglingOutputIsExactlyNl005) {
  const tpg::SyntheticCore core = clean_core();
  RawNetlist raw = core.netlist.to_raw();
  raw.outputs.push_back(
      netlist::Port{"floating", static_cast<NetId>(raw.n_nets)});
  ++raw.n_nets;
  const LintReport report = verify::lint_netlist(raw, chain_config(core));
  EXPECT_EQ(error_rules(report), std::set<RuleId>{RuleId::PortDangling});
  // The diagnostic names the port by output index.
  ASSERT_EQ(report.count(RuleId::PortDangling), 1u);
  for (const verify::Diagnostic& d : report.diagnostics) {
    if (d.rule == RuleId::PortDangling) {
      EXPECT_EQ(d.object, raw.outputs.size() - 1);
    }
  }
}

TEST(VerifyNetlist, FanoutCeilingIsNl006WarningOnly) {
  const tpg::SyntheticCore core = clean_core();
  verify::NetlistLintConfig config = chain_config(core);
  config.fanout_ceiling = 1;  // scan_en alone fans out to every mux
  const LintReport report = verify::lint_netlist(core.netlist, config);
  EXPECT_TRUE(report.admissible());
  EXPECT_TRUE(report.has(RuleId::NetFanout));

  config.fanout_ceiling = 0;  // rule disabled
  config.check_unreachable = true;
  EXPECT_TRUE(verify::lint_netlist(core.netlist, config).clean());
}

TEST(VerifyNetlist, MutationBrokenScanChainIsExactlyNl007) {
  const tpg::SyntheticCore core = clean_core();
  RawNetlist raw = core.netlist.to_raw();
  // Retarget a scan mux's scan-path pin (in[1]) away from its chain
  // predecessor, onto an ordinary (driven) functional input net.
  raw.cells[find_scan_mux(raw)].in[1] = raw.inputs[0].net;
  const LintReport report = verify::lint_netlist(raw, chain_config(core));
  EXPECT_EQ(error_rules(report),
            std::set<RuleId>{RuleId::ScanChainBroken});
}

TEST(VerifyNetlist, WrongChainLengthIsExactlyNl007) {
  const tpg::SyntheticCore core = clean_core();
  verify::NetlistLintConfig config = chain_config(core);
  config.scan_chains[0].length += 1;  // CompiledProgram expects one more FF
  const LintReport report = verify::lint_netlist(core.netlist, config);
  EXPECT_EQ(error_rules(report),
            std::set<RuleId>{RuleId::ScanChainBroken});
}

TEST(VerifyNetlist, UnlistedChainLeavesOrphanFlipFlopsNl007) {
  const tpg::SyntheticCore core = clean_core();
  ASSERT_GE(core.chains.size(), 2u);
  verify::NetlistLintConfig config = chain_config(core);
  config.scan_chains.pop_back();  // chain 1's FFs become unreachable
  const LintReport report = verify::lint_netlist(core.netlist, config);
  EXPECT_EQ(error_rules(report),
            std::set<RuleId>{RuleId::ScanChainBroken});
}

// ---------------------------------------------------------------------------
// Levelize failure routing (the latent-footgun fix): cycle errors name the
// offending nets instead of only counting unplaceable cells.
// ---------------------------------------------------------------------------

TEST(VerifyNetlist, LevelizeCycleErrorNamesTheLoop) {
  RawNetlist raw;
  raw.name = "looper";
  raw.n_nets = 4;  // a, loop_x, loop_y, unused
  raw.inputs.push_back(netlist::Port{"a", 0});
  raw.cells.push_back(
      Cell{CellKind::And2, {0, 2, netlist::kNoNet}, 1});  // loop_x
  raw.cells.push_back(
      Cell{CellKind::Not, {1, netlist::kNoNet, netlist::kNoNet},
           2});  // loop_y
  raw.outputs.push_back(netlist::Port{"y", 1});
  raw.net_names.emplace_back(1, "loop_x");
  raw.net_names.emplace_back(2, "loop_y");

  const netlist::Netlist nl = netlist::Netlist::from_raw(raw);
  try {
    (void)netlist::levelize(nl);
    FAIL() << "levelize accepted a cyclic netlist";
  } catch (const SimulationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("combinational cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("loop_x"), std::string::npos) << what;
    EXPECT_NE(what.find("loop_y"), std::string::npos) << what;
    EXPECT_NE(what.find("->"), std::string::npos) << what;
  }

  const std::string walk = verify::describe_comb_cycle(nl);
  EXPECT_NE(walk.find("loop_x"), std::string::npos) << walk;
  const std::vector<CellId> cycle = verify::find_comb_cycle(nl.to_raw());
  EXPECT_EQ(cycle.size(), 2u);
}

// ---------------------------------------------------------------------------
// Schedule lint: clean strategies, then one mutation per rule.
// ---------------------------------------------------------------------------

std::vector<sched::CoreTestSpec> mixed_cores() {
  using sched::CoreTestSpec;
  std::vector<CoreTestSpec> cores;
  cores.push_back(CoreTestSpec{"c0", {40, 30, 20}, 60, 0});
  cores.push_back(CoreTestSpec{"c1", {25, 25}, 40, 0});
  cores.push_back(CoreTestSpec{"c2", {64}, 100, 0});
  cores.push_back(CoreTestSpec{"b0", {}, 0, 900});
  cores.push_back(CoreTestSpec{"b1", {}, 0, 500});
  return cores;
}

TEST(VerifySched, EveryStrategyLintsClean) {
  const std::vector<sched::CoreTestSpec> cores = mixed_cores();
  for (const sched::Strategy s :
       {sched::Strategy::Single, sched::Strategy::PerCore,
        sched::Strategy::Greedy, sched::Strategy::Phased,
        sched::Strategy::Best, sched::Strategy::Exact,
        sched::Strategy::BranchBound}) {
    const sched::Schedule schedule = sched::schedule_with(cores, 4, s);
    const LintReport report = verify::lint_schedule(schedule, cores, 4);
    EXPECT_TRUE(report.clean())
        << sched::strategy_name(s) << "\n" << report.to_string();
  }
}

TEST(VerifySched, BranchBoundCertificateLintsClean) {
  const std::vector<sched::CoreTestSpec> cores = mixed_cores();
  const sched::SessionScheduler scheduler(cores, 4);
  const explore::BranchBoundResult result =
      explore::BranchBoundScheduler(scheduler).run();
  const LintReport report = verify::lint_branch_bound(result, cores, 4);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(VerifySched, MutationDoubleBookedWireIsExactlySc001) {
  // Two cores, two equal-length chains each, two wires: injectivity puts
  // each core's chains on distinct wires. Re-pack both chains of each core
  // onto one wire — loads and max load stay identical, only the N/P
  // routing constraint breaks.
  std::vector<sched::CoreTestSpec> cores;
  cores.push_back(sched::CoreTestSpec{"c0", {16, 16}, 8, 0});
  cores.push_back(sched::CoreTestSpec{"c1", {16, 16}, 8, 0});
  sched::Schedule schedule = sched::schedule_with(
      cores, 2, sched::Strategy::Single);
  ASSERT_EQ(schedule.sessions.size(), 1u);
  sched::ScheduledSession& s = schedule.sessions[0];
  ASSERT_EQ(s.items.size(), 4u);
  for (std::size_t i = 0; i < s.items.size(); ++i)
    s.balance.wire_of_item[i] =
        static_cast<unsigned>(s.items[i].core);  // core -> its own wire
  s.balance.wire_load = {32, 32};
  const LintReport report = verify::lint_schedule(schedule, cores, 2);
  EXPECT_EQ(error_rules(report),
            std::set<RuleId>{RuleId::SessWireConflict});
}

TEST(VerifySched, MutationOverWideBalanceIsExactlySc002) {
  const std::vector<sched::CoreTestSpec> cores = mixed_cores();
  sched::Schedule schedule =
      sched::schedule_with(cores, 4, sched::Strategy::Greedy);
  // Claim one more balance wire than the bus (minus BIST) can offer; the
  // extra wire carries nothing, so every load/time figure still checks.
  ASSERT_FALSE(schedule.sessions.empty());
  sched::ScheduledSession* scan_session = nullptr;
  for (sched::ScheduledSession& s : schedule.sessions)
    if (!s.scan_cores.empty()) scan_session = &s;
  ASSERT_NE(scan_session, nullptr);
  while (scan_session->balance.wire_load.size() <
         4 - scan_session->bist_cores.size() + 1)
    scan_session->balance.wire_load.push_back(0);
  const LintReport report = verify::lint_schedule(schedule, cores, 4);
  EXPECT_EQ(error_rules(report),
            std::set<RuleId>{RuleId::SessOverCapacity});
}

TEST(VerifySched, MutationWrongScanCyclesIsExactlySc003) {
  const std::vector<sched::CoreTestSpec> cores = mixed_cores();
  sched::Schedule schedule =
      sched::schedule_with(cores, 4, sched::Strategy::PerCore);
  // Falsify one session's scan counter and patch the program total so the
  // reconfiguration accounting stays coherent.
  sched::ScheduledSession* scan_session = nullptr;
  for (sched::ScheduledSession& s : schedule.sessions)
    if (!s.scan_cores.empty()) scan_session = &s;
  ASSERT_NE(scan_session, nullptr);
  scan_session->scan_cycles += 1;
  schedule.total_cycles += 1;
  const LintReport report = verify::lint_schedule(schedule, cores, 4);
  EXPECT_EQ(error_rules(report), std::set<RuleId>{RuleId::SessTimeModel});
}

TEST(VerifySched, MutationReconfigAccountingIsExactlySc004) {
  const std::vector<sched::CoreTestSpec> cores = mixed_cores();
  sched::Schedule schedule =
      sched::schedule_with(cores, 4, sched::Strategy::Greedy);
  schedule.sessions[0].config_cycles += 5;
  schedule.total_cycles += 5;
  const LintReport report = verify::lint_schedule(schedule, cores, 4);
  EXPECT_EQ(error_rules(report), std::set<RuleId>{RuleId::SessReconfig});

  // The program-total consistency check is SC004 as well.
  sched::Schedule totals =
      sched::schedule_with(cores, 4, sched::Strategy::Greedy);
  totals.total_cycles += 123;
  EXPECT_EQ(error_rules(verify::lint_schedule(totals, cores, 4)),
            std::set<RuleId>{RuleId::SessReconfig});
}

TEST(VerifySched, MutationDroppedSessionIsExactlySc005) {
  const std::vector<sched::CoreTestSpec> cores = mixed_cores();
  sched::Schedule schedule =
      sched::schedule_with(cores, 4, sched::Strategy::PerCore);
  // Retire the last core's dedicated session and keep totals consistent:
  // its test budget is simply never fulfilled.
  ASSERT_EQ(schedule.sessions.size(), cores.size());
  schedule.total_cycles -= schedule.sessions.back().total_cycles();
  schedule.sessions.pop_back();
  const LintReport report = verify::lint_schedule(schedule, cores, 4);
  EXPECT_EQ(error_rules(report), std::set<RuleId>{RuleId::CoreNotCovered});
}

TEST(VerifySched, MutationIncoherentBoundIsExactlySc006) {
  const std::vector<sched::CoreTestSpec> cores = mixed_cores();
  const sched::SessionScheduler scheduler(cores, 4);
  explore::BranchBoundResult result =
      explore::BranchBoundScheduler(scheduler).run();
  result.lower_bound = result.best_cost + 1;  // certificate above incumbent
  const LintReport report = verify::lint_branch_bound(result, cores, 4);
  EXPECT_EQ(error_rules(report), std::set<RuleId>{RuleId::BoundIncoherent});
}

// ---------------------------------------------------------------------------
// Zero diagnostics over SocGenerator populations at 10 / 100 / 1000 cores.
// ---------------------------------------------------------------------------

TEST(VerifySched, GeneratedPopulationsLintClean) {
  const explore::SocGenerator gen(42);
  for (const std::size_t n : {std::size_t{10}, std::size_t{100}}) {
    for (const explore::SocProfile profile :
         {explore::SocProfile::Mixed, explore::SocProfile::ScanHeavy,
          explore::SocProfile::BistHeavy}) {
      const explore::GeneratedSoc soc = gen.generate(n, profile, 0);
      for (const sched::Strategy s :
           {sched::Strategy::Greedy, sched::Strategy::Phased,
            sched::Strategy::PerCore}) {
        const sched::Schedule schedule =
            sched::schedule_with(soc.cores, soc.suggested_width, s);
        const LintReport report =
            verify::lint_schedule(schedule, soc.cores, soc.suggested_width);
        EXPECT_TRUE(report.clean())
            << soc.name << " " << sched::strategy_name(s) << "\n"
            << report.to_string();
      }
    }
  }
}

TEST(VerifySched, ThousandCorePopulationLintsClean) {
  const explore::SocGenerator gen(42);
  const explore::GeneratedSoc soc =
      gen.generate(1000, explore::SocProfile::Mixed, 0);
  // Branch-and-bound is the strategy built for this scale; its incumbent
  // and certificate must both survive the linter.
  const sched::SessionScheduler scheduler(soc.cores, soc.suggested_width);
  explore::BranchBoundConfig config;
  config.node_budget = 2000;  // bound arithmetic only, keeps the test fast
  const explore::BranchBoundResult result =
      explore::BranchBoundScheduler(scheduler, config).run();
  const LintReport report =
      verify::lint_branch_bound(result, soc.cores, soc.suggested_width);
  EXPECT_TRUE(report.clean()) << report.to_string();

  const sched::Schedule per_core = sched::schedule_with(
      soc.cores, soc.suggested_width, sched::Strategy::PerCore);
  EXPECT_TRUE(
      verify::lint_schedule(per_core, soc.cores, soc.suggested_width)
          .clean());
}

}  // namespace
