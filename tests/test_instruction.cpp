// Tests for the CAS instruction space: the m and k formulas against every
// row of the paper's Table 1, and rank/unrank properties.

#include <gtest/gtest.h>

#include <set>

#include "core/arrangement.hpp"
#include "core/instruction.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace casbus::tam {
namespace {

TEST(Arrangement, CountsMatchFactorialRatio) {
  EXPECT_EQ(arrangement_count(4, 0), 1u);
  EXPECT_EQ(arrangement_count(4, 1), 4u);
  EXPECT_EQ(arrangement_count(4, 2), 12u);
  EXPECT_EQ(arrangement_count(4, 4), 24u);
  EXPECT_EQ(arrangement_count(8, 4), 1680u);
  EXPECT_EQ(arrangement_count(6, 5), 720u);
  EXPECT_THROW(arrangement_count(3, 4), PreconditionError);
}

TEST(Arrangement, RankOfFirstAndLast) {
  EXPECT_EQ(arrangement_rank({0, 1, 2}, 5), 0u);
  EXPECT_EQ(arrangement_rank({4, 3, 2}, 5), arrangement_count(5, 3) - 1);
}

TEST(Arrangement, UnrankEnumeratesLexicographically) {
  // For (n=3, p=2) the lexicographic order is:
  // 01 02 10 12 20 21
  const std::vector<std::vector<unsigned>> expect = {
      {0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}};
  for (std::uint64_t r = 0; r < expect.size(); ++r)
    EXPECT_EQ(arrangement_unrank(r, 3, 2), expect[r]) << "rank " << r;
}

TEST(Arrangement, RankUnrankRoundTripExhaustive) {
  for (unsigned n = 1; n <= 6; ++n) {
    for (unsigned p = 1; p <= n; ++p) {
      const std::uint64_t total = arrangement_count(n, p);
      std::set<std::vector<unsigned>> seen;
      for (std::uint64_t r = 0; r < total; ++r) {
        const auto wires = arrangement_unrank(r, n, p);
        EXPECT_EQ(arrangement_rank(wires, n), r);
        EXPECT_TRUE(seen.insert(wires).second) << "duplicate arrangement";
        // Wires are distinct and in range.
        std::set<unsigned> uniq(wires.begin(), wires.end());
        EXPECT_EQ(uniq.size(), p);
        for (const unsigned w : wires) EXPECT_LT(w, n);
      }
      EXPECT_EQ(seen.size(), total);
    }
  }
}

TEST(Arrangement, InvalidInputsThrow) {
  EXPECT_THROW(arrangement_rank({0, 0}, 3), PreconditionError);
  EXPECT_THROW(arrangement_rank({3}, 3), PreconditionError);
  EXPECT_THROW(arrangement_unrank(6, 3, 2), PreconditionError);
}

/// The paper's Table 1: N, P, m, k. Our formulas must reproduce every row
/// exactly (gate counts are compared in bench_table1 instead).
struct Table1Row {
  unsigned n, p;
  std::uint64_t m;
  unsigned k;
};

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, FormulaReproducesPaperRow) {
  const auto row = GetParam();
  const InstructionSet isa(row.n, row.p);
  EXPECT_EQ(isa.m(), row.m) << "N=" << row.n << " P=" << row.p;
  EXPECT_EQ(isa.k(), row.k) << "N=" << row.n << " P=" << row.p;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1,
    ::testing::Values(Table1Row{3, 1, 5, 3}, Table1Row{4, 1, 6, 3},
                      Table1Row{4, 2, 14, 4}, Table1Row{4, 3, 26, 5},
                      Table1Row{5, 1, 7, 3}, Table1Row{5, 2, 22, 5},
                      Table1Row{5, 3, 62, 6}, Table1Row{6, 1, 8, 3},
                      Table1Row{6, 2, 32, 5}, Table1Row{6, 3, 122, 7},
                      Table1Row{6, 5, 722, 10}, Table1Row{8, 4, 1682, 11}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.n) + "_P" +
             std::to_string(info.param.p);
    });

TEST(InstructionSet, SpecialCodes) {
  const InstructionSet isa(4, 2);
  EXPECT_TRUE(InstructionSet::is_bypass(InstructionSet::kBypassCode));
  EXPECT_TRUE(InstructionSet::is_config(InstructionSet::kConfigCode));
  EXPECT_FALSE(isa.is_test(0));
  EXPECT_FALSE(isa.is_test(1));
  EXPECT_TRUE(isa.is_test(2));
  EXPECT_TRUE(isa.is_test(isa.m() - 1));
  EXPECT_FALSE(isa.is_test(isa.m()));
  EXPECT_TRUE(isa.is_valid(isa.m() - 1));
  EXPECT_FALSE(isa.is_valid(isa.m()));
}

TEST(InstructionSet, EncodeDecodeRoundTripExhaustive) {
  const InstructionSet isa(5, 3);
  for (std::uint64_t code = InstructionSet::kFirstTestCode; code < isa.m();
       ++code) {
    const SwitchScheme scheme = isa.decode(code);
    EXPECT_EQ(isa.encode(scheme), code);
    EXPECT_EQ(scheme.bus_width(), 5u);
    EXPECT_EQ(scheme.port_count(), 3u);
  }
}

TEST(InstructionSet, DecodeNonTestThrows) {
  const InstructionSet isa(4, 2);
  EXPECT_THROW((void)isa.decode(InstructionSet::kBypassCode),
               PreconditionError);
  EXPECT_THROW((void)isa.decode(isa.m()), PreconditionError);
}

TEST(InstructionSet, EncodeRejectsWrongGeometry) {
  const InstructionSet isa(4, 2);
  const SwitchScheme wrong = SwitchScheme::identity(2, 5);
  EXPECT_THROW((void)isa.encode(wrong), PreconditionError);
}

TEST(InstructionSet, InvalidGeometryThrows) {
  EXPECT_THROW(InstructionSet(0, 0), PreconditionError);
  EXPECT_THROW(InstructionSet(4, 0), PreconditionError);
  EXPECT_THROW(InstructionSet(4, 5), PreconditionError);
}

TEST(InstructionSet, KGrowsMonotonicallyWithM) {
  // Property: k = ceil(log2 m) — check the defining inequalities for a
  // sweep of geometries.
  for (unsigned n = 1; n <= 10; ++n) {
    for (unsigned p = 1; p <= n; ++p) {
      const InstructionSet isa(n, p);
      EXPECT_GE(1ULL << isa.k(), isa.m());
      if (isa.k() > 0) {
        EXPECT_LT(1ULL << (isa.k() - 1), isa.m());
      }
    }
  }
}

TEST(SwitchScheme, DerivedReturnPathFollowsHeuristic) {
  // Paper §3.2 heuristic: e_i -> o_j implies i_j -> s_i.
  const SwitchScheme s({3, 0, 2}, 4);  // port0<-w3, port1<-w0, port2<-w2
  EXPECT_EQ(s.wire_of_port(0), 3u);
  ASSERT_TRUE(s.port_of_wire(3).has_value());
  EXPECT_EQ(*s.port_of_wire(3), 0u);
  EXPECT_EQ(*s.port_of_wire(0), 1u);
  EXPECT_EQ(*s.port_of_wire(2), 2u);
  EXPECT_FALSE(s.port_of_wire(1).has_value());
  EXPECT_TRUE(s.wire_bypasses(1));
  EXPECT_FALSE(s.wire_bypasses(0));
}

TEST(SwitchScheme, RejectsIllegalAssignments) {
  EXPECT_THROW(SwitchScheme({0, 0}, 4), PreconditionError);   // duplicate
  EXPECT_THROW(SwitchScheme({4}, 4), PreconditionError);      // out of range
  EXPECT_THROW(SwitchScheme({0, 1, 2}, 2), PreconditionError);  // P > N
  EXPECT_THROW(SwitchScheme({}, 4), PreconditionError);       // empty
}

TEST(SwitchScheme, IdentityMapsStraightThrough) {
  const SwitchScheme s = SwitchScheme::identity(3, 6);
  for (unsigned j = 0; j < 3; ++j) EXPECT_EQ(s.wire_of_port(j), j);
  for (unsigned w = 3; w < 6; ++w) EXPECT_TRUE(s.wire_bypasses(w));
}

}  // namespace
}  // namespace casbus::tam
