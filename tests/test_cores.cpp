// Unit tests for the core models: MemoryCore (functional port + MARCH C-),
// BistCore (engine semantics), and NetlistCore (clock gating).

#include <gtest/gtest.h>

#include "soc/bist_core.hpp"
#include "soc/core_model.hpp"
#include "soc/memory_core.hpp"
#include "util/rng.hpp"

namespace casbus::soc {
namespace {

/// Drives a memory's functional port directly (no wrapper).
struct MemFixture {
  sim::Simulation sim;
  MemoryCore mem{sim, "ram", 16, 8};

  MemFixture() {
    sim.add(&mem);
    sim.reset();
    sim.settle();
  }

  void op(bool we, std::size_t addr, std::uint64_t wdata = 0) {
    mem.terminals().func_in[0]->set(we);
    for (unsigned a = 0; a < mem.addr_bits(); ++a)
      mem.terminals().func_in[1 + a]->set(((addr >> a) & 1u) != 0);
    for (unsigned d = 0; d < mem.data_bits(); ++d)
      mem.terminals().func_in[1 + mem.addr_bits() + d]->set(
          ((wdata >> d) & 1ULL) != 0);
    sim.step();
  }

  std::uint64_t rdata() {
    sim.settle();
    std::uint64_t v = 0;
    for (unsigned d = 0; d < mem.data_bits(); ++d)
      if (mem.terminals().func_out[d]->get() == Logic4::One) v |= 1ULL << d;
    return v;
  }
};

TEST(MemoryCore, WriteThenReadBack) {
  MemFixture f;
  f.op(true, 5, 0xA7);
  EXPECT_EQ(f.rdata(), 0xA7u);  // write-through presents the new value
  f.op(false, 5);
  EXPECT_EQ(f.rdata(), 0xA7u);
  f.op(false, 6);
  EXPECT_EQ(f.rdata(), 0u);
  EXPECT_EQ(f.mem.peek(5), 0xA7u);
}

TEST(MemoryCore, RandomTrafficMirrorsModel) {
  MemFixture f;
  Rng rng(8);
  std::vector<std::uint64_t> mirror(16, 0);
  for (int i = 0; i < 300; ++i) {
    const std::size_t addr = rng.below(16);
    if (rng.coin()) {
      const std::uint64_t v = rng.below(256);
      f.op(true, addr, v);
      mirror[addr] = v;
    } else {
      f.op(false, addr);
      EXPECT_EQ(f.rdata(), mirror[addr]) << "op " << i;
    }
  }
}

TEST(MemoryCore, MarchLengthIsTenN) {
  MemFixture f;
  EXPECT_EQ(f.mem.mbist_cycles(), 160u);  // 10 * 16 words
  f.mem.terminals().bist_start->set(true);
  sim::Simulation& sim = f.sim;
  // The start-edge tick already executes the first march operation, so
  // the engine needs exactly 160 ticks total. One cycle early: not done.
  sim.step(159);
  sim.settle();
  EXPECT_EQ(f.mem.terminals().bist_done->get(), Logic4::Zero);
  sim.step(1);
  sim.settle();
  EXPECT_EQ(f.mem.terminals().bist_done->get(), Logic4::One);
  EXPECT_EQ(f.mem.terminals().bist_pass->get(), Logic4::One);
}

TEST(MemoryCore, MarchDetectsEveryStuckBitPosition) {
  // Property: MARCH C- catches a stuck-at at any (addr, bit, polarity).
  Rng rng(9);
  for (int trial = 0; trial < 12; ++trial) {
    MemFixture f;
    const auto addr = static_cast<std::size_t>(rng.below(16));
    const auto bit = static_cast<unsigned>(rng.below(8));
    const bool polarity = rng.coin();
    f.mem.inject_stuck_bit(addr, bit, polarity);
    f.mem.terminals().bist_start->set(true);
    f.sim.step(1 + f.mem.mbist_cycles());
    f.sim.settle();
    EXPECT_EQ(f.mem.terminals().bist_done->get(), Logic4::One);
    EXPECT_EQ(f.mem.terminals().bist_pass->get(), Logic4::Zero)
        << "addr " << addr << " bit " << bit << " stuck-" << polarity;
  }
}

TEST(MemoryCore, MarchDestroysContentsAsDocumented) {
  MemFixture f;
  f.op(true, 3, 0xFF);
  f.op(false, 0);  // release the write strobe before the march
  f.mem.terminals().bist_start->set(true);
  f.sim.step(1 + f.mem.mbist_cycles());
  EXPECT_EQ(f.mem.peek(3), 0u);  // MARCH C- ends with w0 sweep
}

TEST(MemoryCore, FunctionalPortFrozenDuringMbist) {
  MemFixture f;
  f.mem.terminals().bist_start->set(true);
  f.sim.step(5);  // engine running
  f.op(true, 2, 0x55);  // must be ignored while the march owns the array
  f.op(false, 0);       // release the strobe before the march completes
  f.sim.step(f.mem.mbist_cycles());
  EXPECT_EQ(f.mem.peek(2), 0u);
}

TEST(MemoryCore, ValidatesConstruction) {
  sim::Simulation sim;
  EXPECT_THROW(MemoryCore(sim, "x", 1, 8), PreconditionError);
  EXPECT_THROW(MemoryCore(sim, "x", 8, 0), PreconditionError);
  EXPECT_THROW(MemoryCore(sim, "x", 8, 65), PreconditionError);
  MemoryCore ok(sim, "ok", 8, 4);
  EXPECT_THROW(ok.inject_stuck_bit(8, 0, true), PreconditionError);
  EXPECT_THROW(ok.inject_stuck_bit(0, 4, true), PreconditionError);
}

tpg::SyntheticCoreSpec bist_logic(std::uint64_t seed) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 6;
  spec.n_outputs = 6;
  spec.n_flipflops = 8;
  spec.n_gates = 40;
  spec.seed = seed;
  return spec;
}

TEST(BistCore, GoldenSignatureIsDeterministic) {
  sim::Simulation s1, s2;
  BistCore a(s1, "a", bist_logic(5), 100);
  BistCore b(s2, "b", bist_logic(5), 100);
  EXPECT_EQ(a.golden_signature(), b.golden_signature());
  BistCore c(s2, "c", bist_logic(6), 100);
  EXPECT_NE(a.golden_signature(), c.golden_signature());
}

TEST(BistCore, RunsToPassAndRestartsCleanly) {
  sim::Simulation sim;
  BistCore bist(sim, "dut", bist_logic(7), 64);
  sim.add(&bist);
  sim.reset();
  bist.terminals().bist_start->set(true);
  sim.step(66);
  sim.settle();
  EXPECT_EQ(bist.terminals().bist_done->get(), Logic4::One);
  EXPECT_EQ(bist.terminals().bist_pass->get(), Logic4::One);

  // Drop and re-raise start: a second session runs and passes again.
  bist.terminals().bist_start->set(false);
  sim.step(2);
  bist.terminals().bist_start->set(true);
  sim.step(2);
  sim.settle();
  EXPECT_EQ(bist.terminals().bist_done->get(), Logic4::Zero)
      << "restart must clear done";
  sim.step(64);
  sim.settle();
  EXPECT_EQ(bist.terminals().bist_pass->get(), Logic4::One);
}

TEST(BistCore, HeldStartDoesNotRetrigger) {
  sim::Simulation sim;
  BistCore bist(sim, "dut", bist_logic(8), 32);
  sim.add(&bist);
  sim.reset();
  bist.terminals().bist_start->set(true);
  sim.step(34);
  sim.settle();
  ASSERT_EQ(bist.terminals().bist_done->get(), Logic4::One);
  sim.step(20);  // start still high: engine must stay done
  sim.settle();
  EXPECT_EQ(bist.terminals().bist_done->get(), Logic4::One);
}

TEST(BistCore, InjectedFaultFlipsVerdictAndClears) {
  sim::Simulation sim;
  BistCore bist(sim, "dut", bist_logic(9), 64);
  sim.add(&bist);
  sim.reset();
  // Fault on a flip-flop output of the core logic.
  const auto ref = tpg::make_synthetic_core(bist_logic(9));
  netlist::NetId ffq = netlist::kNoNet;
  for (const auto& [net, name] : ref.netlist.net_names())
    if (name == "ff_q0") ffq = net;
  ASSERT_NE(ffq, netlist::kNoNet);
  bist.inject_fault(ffq, true);

  bist.terminals().bist_start->set(true);
  sim.step(66);
  sim.settle();
  EXPECT_EQ(bist.terminals().bist_pass->get(), Logic4::Zero);

  bist.clear_faults();
  bist.terminals().bist_start->set(false);
  sim.step(2);
  bist.terminals().bist_start->set(true);
  sim.step(66);
  sim.settle();
  EXPECT_EQ(bist.terminals().bist_pass->get(), Logic4::One);
}

TEST(BistCore, ClockGatingFreezesEngine) {
  sim::Simulation sim;
  BistCore bist(sim, "dut", bist_logic(10), 32);
  sim.add(&bist);
  sim.reset();
  bist.terminals().core_clk_en->set(false);
  bist.terminals().bist_start->set(true);
  sim.step(100);
  sim.settle();
  EXPECT_EQ(bist.terminals().bist_done->get(), Logic4::Zero)
      << "gated clock: the engine must not have advanced";
  bist.terminals().core_clk_en->set(true);
  sim.step(34);
  sim.settle();
  EXPECT_EQ(bist.terminals().bist_done->get(), Logic4::One);
}

TEST(NetlistCore, ClockGatingHoldsState) {
  sim::Simulation sim;
  tpg::SyntheticCoreSpec spec;
  spec.n_flipflops = 6;
  spec.seed = 11;
  NetlistCore core(sim, "dut", tpg::make_synthetic_core(spec));
  sim.add(&core);
  sim.reset();
  // Run a few functional cycles to randomize state.
  core.terminals().func_in[0]->set(true);
  sim.step(5);
  std::vector<Logic4> snapshot;
  for (std::size_t f = 0; f < 6; ++f)
    snapshot.push_back(core.gatesim().dff_state(f));
  core.terminals().core_clk_en->set(false);
  sim.step(7);
  for (std::size_t f = 0; f < 6; ++f)
    EXPECT_EQ(core.gatesim().dff_state(f), snapshot[f]) << "ff " << f;
}

}  // namespace
}  // namespace casbus::soc
