// MemoryTraffic generator/checker: mirrors, pausing, and corruption
// detection — the watchdog used by the maintenance-test experiments.

#include <gtest/gtest.h>

#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "soc/traffic.hpp"

namespace casbus::soc {
namespace {

std::unique_ptr<Soc> mem_soc() {
  SocBuilder b(2);
  b.add_memory_core("ram", 32, 8);
  return b.build();
}

TEST(MemoryTraffic, GeneratesAndVerifiesReads) {
  auto soc = mem_soc();
  MemoryTraffic traffic(*soc, 0, 7);
  SocTester tester(*soc);
  traffic.set_enabled(true);
  tester.step(400);
  EXPECT_GT(traffic.operations(), 100u);
  EXPECT_GT(traffic.reads_checked(), 20u);
  EXPECT_EQ(traffic.mismatches(), 0u);
}

TEST(MemoryTraffic, DetectsCorruptionBehindItsBack) {
  // A stuck bit injected into the array must surface as read-back
  // mismatches — the checker is a real checker, not a tautology.
  auto soc = mem_soc();
  MemoryTraffic traffic(*soc, 0, 11);
  SocTester tester(*soc);
  traffic.set_enabled(true);
  tester.step(200);
  ASSERT_EQ(traffic.mismatches(), 0u);

  MemoryCore& ram = soc->cores()[0].as_memory();
  for (std::size_t a = 0; a < 8; ++a)  // corrupt several words
    ram.inject_stuck_bit(a, 2, true);
  tester.step(600);
  EXPECT_GT(traffic.mismatches(), 0u);
}

TEST(MemoryTraffic, PauseStopsOperations) {
  auto soc = mem_soc();
  MemoryTraffic traffic(*soc, 0, 13);
  SocTester tester(*soc);
  traffic.set_enabled(true);
  tester.step(100);
  const auto ops = traffic.operations();
  traffic.set_enabled(false);
  tester.step(100);
  EXPECT_EQ(traffic.operations(), ops);
  traffic.set_enabled(true);
  tester.step(100);
  EXPECT_GT(traffic.operations(), ops);
}

TEST(MemoryTraffic, ForgetMirrorSurvivesDestructiveTest) {
  // After a MARCH session wiped the array, forgetting the mirror lets
  // traffic resume cleanly (fresh writes rebuild it).
  auto soc = mem_soc();
  MemoryTraffic traffic(*soc, 0, 17);
  SocTester tester(*soc);
  traffic.set_enabled(true);
  tester.step(150);

  traffic.set_enabled(false);
  MemoryCore& ram = soc->cores()[0].as_memory();
  const auto r = tester.run_bist(0, 1, ram.mbist_cycles());
  EXPECT_TRUE(r.pass);
  // The session leaves this wrapper in Bist mode; the test program must
  // return it to functional Bypass before handing the port back.
  tester.load_all_wrappers(p1500::WrapperInstr::Bypass);
  traffic.forget_mirror();
  traffic.set_enabled(true);
  tester.step(300);
  EXPECT_EQ(traffic.mismatches(), 0u);
}

TEST(MemoryTraffic, RequiresAMemoryCore) {
  SocBuilder b(2);
  tpg::SyntheticCoreSpec spec;
  spec.seed = 3;
  b.add_scan_core("notram", spec);
  auto soc = b.build();
  EXPECT_THROW(MemoryTraffic(*soc, 0, 1), PreconditionError);
}

}  // namespace
}  // namespace casbus::soc
