// Tests for the scheduling layer: time model, balancing, session
// scheduling and the width explorer.

#include <gtest/gtest.h>

#include "sched/balance.hpp"
#include "sched/scheduler.hpp"
#include "sched/time_model.hpp"
#include "sched/width_explorer.hpp"
#include "util/rng.hpp"

namespace casbus::sched {
namespace {

TEST(TimeModel, ScanFormulaMatchesSimulatorContract) {
  // The exact numbers validated cycle-accurately in test_soc.
  EXPECT_EQ(scan_cycles(6, 4), 4u * 7u + 6u);
  EXPECT_EQ(scan_cycles(14, 3), 3u * 15u + 14u);
  EXPECT_EQ(scan_cycles(0, 10), 0u);
  EXPECT_EQ(scan_cycles(10, 0), 0u);
}

TEST(TimeModel, ConfigFormulas) {
  EXPECT_EQ(configure_cycles(14), 15u);
  EXPECT_EQ(wir_cycles(7), 22u);
  EXPECT_EQ(cas_ir_bits(4, 2), 4u);   // Table 1 row
  EXPECT_EQ(cas_ir_bits(8, 4), 11u);  // Table 1 row
  // Session config = CAS IRs + update + wrapper ring.
  EXPECT_EQ(session_config_cycles({{4, 2}, {4, 1}}, 2),
            (4u + 3u + 1u) + (3u * 2u + 1u));
}

TEST(Balance, RoundRobinIsOrderSensitive) {
  const std::vector<ChainItem> items = {
      {0, 0, 100}, {0, 1, 1}, {1, 0, 100}, {1, 1, 1}};
  const Balance rr = assign_round_robin(items, 2);
  // Round-robin puts both 100s on wire 0.
  EXPECT_EQ(rr.max_load(), 200u);
  const Balance lpt = assign_lpt(items, 2);
  EXPECT_EQ(lpt.max_load(), 101u);
}

TEST(Balance, LptNeverWorseThanRoundRobinOnRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ChainItem> items;
    const std::size_t n = 3 + rng.below(12);
    for (std::size_t i = 0; i < n; ++i)
      items.push_back(ChainItem{i, 0, 1 + rng.below(200)});
    const auto wires = static_cast<unsigned>(1 + rng.below(6));
    const Balance rr = assign_round_robin(items, wires);
    const Balance lpt = assign_lpt(items, wires);
    const Balance ref = assign_lpt_refined(items, wires);
    EXPECT_LE(lpt.max_load(), rr.max_load()) << "trial " << trial;
    EXPECT_LE(ref.max_load(), lpt.max_load()) << "trial " << trial;
    EXPECT_GE(ref.max_load(), balance_lower_bound(items, wires));
  }
}

TEST(Balance, LptWithinClassicalApproximationBound) {
  // LPT is a (4/3 - 1/3m)-approximation; check against the lower bound.
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<ChainItem> items;
    const std::size_t n = 5 + rng.below(15);
    for (std::size_t i = 0; i < n; ++i)
      items.push_back(ChainItem{i, 0, 1 + rng.below(64)});
    const unsigned wires = 4;
    const Balance lpt = assign_lpt(items, wires);
    const std::size_t lb = balance_lower_bound(items, wires);
    EXPECT_LE(3 * lpt.max_load(), 4 * lb + 3)
        << "trial " << trial << ": LPT exceeded 4/3 bound";
  }
}

TEST(Balance, LoadsAccountEveryItem) {
  const std::vector<ChainItem> items = {{0, 0, 7}, {0, 1, 9}, {1, 0, 3}};
  for (const Balance& b :
       {assign_round_robin(items, 2), assign_lpt(items, 2),
        assign_lpt_refined(items, 2)}) {
    std::size_t total = 0;
    for (const std::size_t l : b.wire_load) total += l;
    EXPECT_EQ(total, 19u);
    ASSERT_EQ(b.wire_of_item.size(), items.size());
    for (const unsigned w : b.wire_of_item) EXPECT_LT(w, 2u);
  }
}

std::vector<CoreTestSpec> demo_cores() {
  std::vector<CoreTestSpec> cores;
  cores.push_back(CoreTestSpec{"cpu", {120, 110, 95, 80}, 220, 0});
  cores.push_back(CoreTestSpec{"dsp", {60, 60}, 180, 0});
  cores.push_back(CoreTestSpec{"io", {30}, 40, 0});
  cores.push_back(CoreTestSpec{"mpeg", {90, 85, 70}, 150, 0});
  cores.push_back(CoreTestSpec{"bist1", {}, 0, 4000});
  cores.push_back(CoreTestSpec{"ram", {}, 0, 2560});
  return cores;
}

TEST(Scheduler, SchedulesCoverEveryCoreExactlyOnce) {
  SessionScheduler s(demo_cores(), 6);
  for (const Schedule& sched :
       {s.single_session(), s.per_core_sessions(), s.greedy()}) {
    std::vector<int> seen(6, 0);
    for (const auto& session : sched.sessions) {
      for (const std::size_t c : session.scan_cores) ++seen[c];
      for (const std::size_t c : session.bist_cores) ++seen[c];
    }
    for (int i = 0; i < 6; ++i) EXPECT_EQ(seen[i], 1) << "core " << i;
    EXPECT_GT(sched.total_cycles, 0u);
  }
}

TEST(Scheduler, GreedyBeatsOrMatchesPerCore) {
  SessionScheduler s(demo_cores(), 6);
  EXPECT_LE(s.greedy().total_cycles, s.per_core_sessions().total_cycles);
}

TEST(Scheduler, PhasedCoversEveryCoreOnce) {
  SessionScheduler s(demo_cores(), 6);
  const Schedule phased = s.phased();
  std::vector<int> seen(6, 0);
  for (const auto& session : phased.sessions) {
    for (const std::size_t c : session.bist_cores) ++seen[c];
  }
  // Scan cores appear in several phases (progressive retirement), but each
  // must be present in the first phase and absent after its own budget.
  std::vector<bool> in_first(6, false);
  for (const std::size_t c : phased.sessions[0].scan_cores)
    in_first[c] = true;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(in_first[i]) << "core " << i;
  for (int i = 4; i < 6; ++i) EXPECT_EQ(seen[i], 1) << "bist core " << i;
}

TEST(Scheduler, PhasedBeatsGreedyOnHeterogeneousSocs) {
  // On SoCs with many distinct pattern budgets, progressive retirement
  // rebalances the freed wires; grouped schedules cannot. (The margin is
  // instance-dependent; this reference instance shows a clear win.)
  std::vector<CoreTestSpec> cores = {
      CoreTestSpec{"cpu", {128, 121, 115, 96}, 256, 0},
      CoreTestSpec{"dsp", {84, 80, 77}, 192, 0},
      CoreTestSpec{"mpeg", {140, 133}, 210, 0},
      CoreTestSpec{"usb", {42, 40}, 96, 0},
      CoreTestSpec{"uart", {24}, 48, 0},
      CoreTestSpec{"gpio", {16}, 32, 0},
      CoreTestSpec{"crypto", {96, 90, 88, 85}, 300, 0},
  };
  SessionScheduler s(cores, 12);
  EXPECT_LT(s.phased().total_cycles, s.greedy().total_cycles);
  EXPECT_LE(s.best().total_cycles, s.phased().total_cycles);
}

TEST(Scheduler, RailEmulationParallelismAndValidation) {
  SessionScheduler s(demo_cores(), 8);
  // More rails -> more cross-core parallelism on this instance.
  EXPECT_LE(s.rail_emulation(4).total_cycles,
            s.rail_emulation(1).total_cycles);
  EXPECT_THROW((void)s.rail_emulation(0), PreconditionError);
  EXPECT_THROW((void)s.rail_emulation(9), PreconditionError);
  // A rail plan is a valid schedule: every core accounted once.
  const Schedule sched = s.rail_emulation(3);
  ASSERT_EQ(sched.sessions.size(), 1u);
  EXPECT_EQ(sched.sessions[0].scan_cores.size() +
                sched.sessions[0].bist_cores.size(),
            demo_cores().size());
}

TEST(Scheduler, PhasedPatternAccountingIsExact) {
  // Sum of per-phase pattern deltas must equal each core's budget: verify
  // via total scan cycles of a hand-checkable instance.
  std::vector<CoreTestSpec> cores;
  cores.push_back(CoreTestSpec{"a", {10}, 4, 0});
  cores.push_back(CoreTestSpec{"b", {10}, 10, 0});
  SessionScheduler s(cores, 2);
  const Schedule phased = s.phased();
  // Phase 1: both cores, 1 chain each on its own wire, load 10, 4 patterns
  // -> 4*11 + 10. Phase 2: core b alone, load 10, 6 patterns -> 6*11 + 10.
  ASSERT_EQ(phased.sessions.size(), 2u);
  EXPECT_EQ(phased.sessions[0].scan_cycles, 4u * 11u + 10u);
  EXPECT_EQ(phased.sessions[1].scan_cycles, 6u * 11u + 10u);
}

TEST(Scheduler, BestIsMinimumOfAllStrategies) {
  SessionScheduler s(demo_cores(), 6);
  const std::uint64_t best = s.best().total_cycles;
  EXPECT_LE(best, s.single_session().total_cycles);
  EXPECT_LE(best, s.per_core_sessions().total_cycles);
  EXPECT_LE(best, s.greedy().total_cycles);
  EXPECT_LE(best, s.phased().total_cycles);
}

TEST(Scheduler, NarrowBusForcesBistOverflowSessions) {
  // 3 BIST cores on a 2-wire bus cannot share one configuration.
  std::vector<CoreTestSpec> cores = {
      CoreTestSpec{"s", {20}, 10, 0},
      CoreTestSpec{"b1", {}, 0, 100},
      CoreTestSpec{"b2", {}, 0, 100},
      CoreTestSpec{"b3", {}, 0, 100},
  };
  SessionScheduler s(cores, 2);
  for (const Schedule& sched : {s.single_session(), s.phased()}) {
    std::vector<int> seen(4, 0);
    for (const auto& session : sched.sessions) {
      EXPECT_LE(session.bist_cores.size(), 2u);
      for (const std::size_t c : session.bist_cores) ++seen[c];
    }
    for (int i = 1; i < 4; ++i) EXPECT_EQ(seen[i], 1) << "core " << i;
  }
}

TEST(Scheduler, GreedyBeatsOrMatchesSingleSessionOnSkewedPatterns) {
  // One core with huge pattern count + several small ones: a single
  // session forces everyone through the big core's pattern budget.
  std::vector<CoreTestSpec> cores;
  cores.push_back(CoreTestSpec{"big", {200, 200}, 1000, 0});
  cores.push_back(CoreTestSpec{"s1", {50}, 10, 0});
  cores.push_back(CoreTestSpec{"s2", {40}, 10, 0});
  cores.push_back(CoreTestSpec{"s3", {60}, 12, 0});
  SessionScheduler s(cores, 4);
  EXPECT_LE(s.greedy().total_cycles, s.single_session().total_cycles);
}

TEST(Scheduler, WiderBusNeverSlower) {
  const auto cores = demo_cores();
  std::uint64_t best = 0;
  for (unsigned n = 2; n <= 12; ++n) {
    SessionScheduler s(cores, n);
    const std::uint64_t t = s.greedy().total_cycles;
    // Allow tiny config-overhead growth: test time dominates.
    if (n > 2) {
      EXPECT_LE(t, best + 64) << "width " << n;
    }
    best = (n == 2) ? t : std::min(best, t);
  }
}

TEST(Scheduler, SessionTimesAddUp) {
  SessionScheduler s(demo_cores(), 4);
  const Schedule sched = s.greedy();
  std::uint64_t sum = 0;
  for (const auto& session : sched.sessions) sum += session.total_cycles();
  EXPECT_EQ(sum, sched.total_cycles);
}

TEST(Scheduler, RejectsEmptyAndInvalid) {
  EXPECT_THROW(SessionScheduler({}, 4), PreconditionError);
  EXPECT_THROW(SessionScheduler(demo_cores(), 0), PreconditionError);
  std::vector<CoreTestSpec> bad = {{"empty", {}, 0, 0}};
  EXPECT_THROW(SessionScheduler(bad, 4), PreconditionError);
}

TEST(WidthExplorer, TimeFallsAreaRisesAcrossWidths) {
  const auto cores = demo_cores();
  const auto points = explore_widths(cores, 2, 10);
  ASSERT_EQ(points.size(), 9u);
  // Test time: wide buses never slower (modulo small config overhead).
  EXPECT_GT(points.front().test_cycles, points.back().test_cycles);
  // Area: strictly growing with width.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].cas_area_ge, points[i - 1].cas_area_ge)
        << "width " << points[i].width;
    EXPECT_GT(points[i].pass_transistor_ge,
              points[i - 1].pass_transistor_ge);
  }
  // Pass-transistor implementation stays cheaper at the wide end (§3.3).
  EXPECT_LT(points.back().pass_transistor_ge, points.back().cas_area_ge);
}

}  // namespace
}  // namespace casbus::sched
