// The health engine: time-series sampling over the registry, the
// hysteresis state machine, the HL001… rule catalogue over synthetic and
// real FloorStats, the flight recorder's atomic incident bundles, the
// session wiring (worker watchdog tripping on a real stalled-looking
// job), and the layer's acceptance bar — health monitoring on vs off
// cannot change a deterministic floor result.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "floor/health.hpp"
#include "floor/job_factory.hpp"
#include "floor/session.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace casbus::obs {
namespace {

// --- TimeSeriesSampler ------------------------------------------------------

TEST(TimeSeriesSampler, ManualTicksRecordCountersGaugesAndHistograms) {
  Registry registry;
  const MetricId jobs = registry.counter("t.jobs");
  registry.gauge("t.depth", [] { return 4.0; });
  const MetricId lat = registry.histogram("t.lat", {10.0, 100.0});

  TimeSeriesSampler sampler(registry, SamplerConfig{1000, 16});
  registry.add(jobs, 5);
  registry.observe(lat, 3.0);
  sampler.sample_now();
  registry.add(jobs, 7);
  registry.observe(lat, 50.0);
  sampler.sample_now();

  EXPECT_EQ(sampler.samples(), 2u);
  EXPECT_EQ(sampler.window_size(), 2u);
  EXPECT_DOUBLE_EQ(sampler.latest("t.jobs"), 12.0);
  EXPECT_DOUBLE_EQ(sampler.delta("t.jobs"), 7.0);
  EXPECT_DOUBLE_EQ(sampler.latest("t.depth"), 4.0);
  // Histograms derive three series.
  EXPECT_DOUBLE_EQ(sampler.latest("t.lat.count"), 2.0);
  EXPECT_DOUBLE_EQ(sampler.latest("t.lat.sum"), 53.0);
  EXPECT_GT(sampler.latest("t.lat.p99"), 0.0);
  const auto names = sampler.series_names();
  EXPECT_EQ(names.size(), 5u);  // counter + gauge + 3 histogram series
}

TEST(TimeSeriesSampler, RingDropsOldestPastTheWindow) {
  Registry registry;
  const MetricId c = registry.counter("t.c");
  TimeSeriesSampler sampler(registry, SamplerConfig{1000, 3});
  for (int i = 0; i < 5; ++i) {
    registry.add(c);
    sampler.sample_now();
  }
  EXPECT_EQ(sampler.samples(), 5u);
  EXPECT_EQ(sampler.window_size(), 3u);  // bounded, drop-oldest
  const auto window = sampler.window("t.c");
  ASSERT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window.front().second, 3.0);  // ticks 3,4,5 retained
  EXPECT_DOUBLE_EQ(window.back().second, 5.0);
  EXPECT_DOUBLE_EQ(sampler.delta("t.c"), 2.0);
}

TEST(TimeSeriesSampler, RatePerSecIsDeltaOverWallTime) {
  Registry registry;
  const MetricId c = registry.counter("t.c");
  TimeSeriesSampler sampler(registry, SamplerConfig{1000, 8});
  sampler.sample_now();
  registry.add(c, 100);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.sample_now();
  const double rate = sampler.rate_per_sec("t.c");
  EXPECT_GT(rate, 0.0);
  EXPECT_LT(rate, 100.0 / 0.015);  // at least ~15 ms elapsed
  // Degenerate cases report 0, never NaN.
  EXPECT_DOUBLE_EQ(sampler.rate_per_sec("absent"), 0.0);
  EXPECT_DOUBLE_EQ(sampler.delta("absent"), 0.0);
}

TEST(TimeSeriesSampler, LateRegisteredSeriesBackfillsWithZeros) {
  Registry registry;
  (void)registry.counter("t.first");
  TimeSeriesSampler sampler(registry, SamplerConfig{1000, 8});
  sampler.sample_now();
  const MetricId late = registry.counter("t.late");
  registry.add(late, 9);
  sampler.sample_now();
  const auto window = sampler.window("t.late");
  ASSERT_EQ(window.size(), 2u);
  EXPECT_DOUBLE_EQ(window[0].second, 0.0);  // backfilled
  EXPECT_DOUBLE_EQ(window[1].second, 9.0);
}

TEST(TimeSeriesSampler, WindowJsonIsParseableShape) {
  Registry registry;
  const MetricId c = registry.counter("t.c");
  TimeSeriesSampler sampler(registry, SamplerConfig{250, 4});
  registry.add(c, 2);
  sampler.sample_now();
  sampler.sample_now();
  const std::string json = sampler.window_json();
  EXPECT_EQ(json.find("{\"samples\":2,\"interval_ms\":250,\"t\":["), 0u);
  EXPECT_NE(json.find("\"series\":{\"t.c\":[2,2]}"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(TimeSeriesSampler, BackgroundThreadTicksAndStops) {
  Registry registry;
  (void)registry.counter("t.c");
  TimeSeriesSampler sampler(registry, SamplerConfig{2, 64});
  std::atomic<int> callbacks{0};
  sampler.start([&] { callbacks.fetch_add(1); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.samples() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.stop();
  EXPECT_GE(sampler.samples(), 3u);
  EXPECT_GE(callbacks.load(), 1);
  const std::uint64_t after_stop = sampler.samples();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sampler.samples(), after_stop);  // really stopped
  sampler.stop();  // idempotent
}

}  // namespace
}  // namespace casbus::obs

namespace casbus::floor {
namespace {

// --- Hysteresis -------------------------------------------------------------

TEST(Hysteresis, TripsOnMOfNSamplesNotOnOne) {
  Hysteresis h(HysteresisConfig{3, 5, 5});
  // A lone critical sample (a flap) must not trip.
  EXPECT_EQ(h.update(HealthLevel::kCritical), HealthLevel::kOk);
  EXPECT_EQ(h.update(HealthLevel::kOk), HealthLevel::kOk);
  EXPECT_EQ(h.update(HealthLevel::kCritical), HealthLevel::kOk);
  // The third critical within the 5-sample window trips.
  EXPECT_EQ(h.update(HealthLevel::kCritical), HealthLevel::kCritical);
}

TEST(Hysteresis, ClearsOneLevelAfterKConsecutiveCalmSamples) {
  Hysteresis h(HysteresisConfig{2, 3, 3});
  (void)h.update(HealthLevel::kCritical);
  ASSERT_EQ(h.update(HealthLevel::kCritical), HealthLevel::kCritical);
  // Two calm samples are not enough; a relapse resets the calm count.
  EXPECT_EQ(h.update(HealthLevel::kOk), HealthLevel::kCritical);
  EXPECT_EQ(h.update(HealthLevel::kOk), HealthLevel::kCritical);
  EXPECT_EQ(h.update(HealthLevel::kCritical), HealthLevel::kCritical);
  // Three consecutive calms step down one level only (critical -> warn).
  (void)h.update(HealthLevel::kOk);
  (void)h.update(HealthLevel::kOk);
  EXPECT_EQ(h.update(HealthLevel::kOk), HealthLevel::kWarn);
  // Three more reach ok.
  (void)h.update(HealthLevel::kOk);
  (void)h.update(HealthLevel::kOk);
  EXPECT_EQ(h.update(HealthLevel::kOk), HealthLevel::kOk);
}

TEST(Hysteresis, WarnSamplesNeverReachCritical) {
  Hysteresis h(HysteresisConfig{2, 4, 2});
  for (int i = 0; i < 8; ++i) {
    const HealthLevel s = h.update(HealthLevel::kWarn);
    EXPECT_NE(s, HealthLevel::kCritical);
  }
  EXPECT_EQ(h.state(), HealthLevel::kWarn);
}

// --- Rule catalogue ids -----------------------------------------------------

TEST(HealthRules, IdsAreStableAndDense) {
  EXPECT_STREQ(health_rule_id(HealthRule::kQueueSaturation), "HL001");
  EXPECT_STREQ(health_rule_id(HealthRule::kBackpressure), "HL002");
  EXPECT_STREQ(health_rule_id(HealthRule::kStageLatency), "HL003");
  EXPECT_STREQ(health_rule_id(HealthRule::kErrorRate), "HL004");
  EXPECT_STREQ(health_rule_id(HealthRule::kCacheHitRate), "HL005");
  EXPECT_STREQ(health_rule_id(HealthRule::kWorkerWatchdog), "HL006");
  EXPECT_STREQ(health_rule_id(HealthRule::kTraceDrops), "HL007");
  EXPECT_STREQ(health_rule_name(HealthRule::kWorkerWatchdog),
               "worker-watchdog");
  EXPECT_STREQ(health_level_name(HealthLevel::kCritical), "critical");
}

// --- HealthMonitor over synthetic FloorStats --------------------------------

HealthConfig fast_config() {
  HealthConfig config;
  config.enabled = true;
  config.hysteresis = HysteresisConfig{1, 1, 1};  // instant trip/clear
  return config;
}

TEST(HealthMonitor, QueueSaturationGradesByFillRatio) {
  HealthMonitor monitor(fast_config());
  FloorStats stats;
  stats.queue.capacity = 10;

  stats.queue.depth = 5;  // 50% — fine
  HealthReport r = monitor.evaluate(stats, 0.1);
  EXPECT_EQ(r.rule(HealthRule::kQueueSaturation).raw, HealthLevel::kOk);

  stats.queue.depth = 8;  // 80% — warn
  r = monitor.evaluate(stats, 0.2);
  EXPECT_EQ(r.rule(HealthRule::kQueueSaturation).raw, HealthLevel::kWarn);

  stats.queue.depth = 10;  // 100% — critical
  r = monitor.evaluate(stats, 0.3);
  const RuleStatus& st = r.rule(HealthRule::kQueueSaturation);
  EXPECT_EQ(st.raw, HealthLevel::kCritical);
  EXPECT_EQ(st.level, HealthLevel::kCritical);
  EXPECT_DOUBLE_EQ(st.value, 1.0);
  EXPECT_NE(st.message.find("queue 10/10"), std::string::npos);
  EXPECT_EQ(r.overall, HealthLevel::kCritical);
}

TEST(HealthMonitor, QueueRuleDisabledWhenUnbounded) {
  HealthMonitor monitor(fast_config());
  FloorStats stats;  // capacity 0 = unbounded
  stats.queue.depth = 1000000;
  const HealthReport r = monitor.evaluate(stats, 0.1);
  EXPECT_FALSE(r.rule(HealthRule::kQueueSaturation).enabled);
  EXPECT_EQ(r.rule(HealthRule::kQueueSaturation).level, HealthLevel::kOk);
}

TEST(HealthMonitor, ErrorRateIsWindowedAndIdleBelowMinJobs) {
  HealthMonitor monitor(fast_config());
  FloorStats stats;
  stats.completed = 100;
  stats.errored = 0;
  HealthReport r = monitor.evaluate(stats, 1.0);
  EXPECT_EQ(r.rule(HealthRule::kErrorRate).raw, HealthLevel::kOk);

  // Only 2 more jobs (below error_min_jobs=4): idle, even though both
  // errored — a windowed rule must not judge a near-empty window.
  stats.completed = 102;
  stats.errored = 2;
  r = monitor.evaluate(stats, 2.0);
  EXPECT_EQ(r.rule(HealthRule::kErrorRate).raw, HealthLevel::kOk);

  // 60% of the windowed jobs errored: critical (>= 50%). The *lifetime*
  // error rate is only ~6% — the window is what catches a sudden break.
  stats.completed = 110;
  stats.errored = 6;
  r = monitor.evaluate(stats, 3.0);
  const RuleStatus& st = r.rule(HealthRule::kErrorRate);
  EXPECT_EQ(st.raw, HealthLevel::kCritical);
  EXPECT_NEAR(st.value, 0.6, 1e-9);
}

TEST(HealthMonitor, WatchdogTripsOnInFlightAge) {
  HealthConfig config = fast_config();
  config.watchdog_ms = 10;
  HealthMonitor monitor(config);
  FloorStats stats;
  stats.worker_inflight_age_seconds = {0.0, 0.006};  // 6 ms: warn (> 5 ms)
  HealthReport r = monitor.evaluate(stats, 0.1);
  EXPECT_EQ(r.rule(HealthRule::kWorkerWatchdog).raw, HealthLevel::kWarn);

  stats.worker_inflight_age_seconds = {0.0, 0.5};  // 500 ms: critical
  r = monitor.evaluate(stats, 0.2);
  const RuleStatus& st = r.rule(HealthRule::kWorkerWatchdog);
  EXPECT_EQ(st.raw, HealthLevel::kCritical);
  EXPECT_NE(st.message.find("worker 1"), std::string::npos);
}

TEST(HealthMonitor, WatchdogDisabledWithoutDeadline) {
  HealthMonitor monitor(fast_config());  // watchdog_ms = 0
  FloorStats stats;
  stats.worker_inflight_age_seconds = {100.0};
  const HealthReport r = monitor.evaluate(stats, 0.1);
  EXPECT_FALSE(r.rule(HealthRule::kWorkerWatchdog).enabled);
  EXPECT_EQ(r.rule(HealthRule::kWorkerWatchdog).level, HealthLevel::kOk);
}

TEST(HealthMonitor, CacheHitRateFloorAndStageCeilingJudgeMetrics) {
  HealthConfig config = fast_config();
  config.cache_hit_floor = 0.5;
  config.cache_min_lookups = 10;
  config.stage_p99_ceiling_us[static_cast<std::size_t>(Stage::Simulate)] =
      100.0;
  HealthMonitor monitor(config);

  FloorStats stats;
  stats.metrics_enabled = true;
  stats.cache_lookups = 0;
  HealthReport r = monitor.evaluate(stats, 1.0);
  EXPECT_EQ(r.rule(HealthRule::kCacheHitRate).raw, HealthLevel::kOk);

  // 10% windowed hit-rate under a 50% floor (and under half of it).
  stats.cache_lookups = 100;
  stats.cache_program_hits = 10;
  // Simulate p99 at 2x its ceiling: critical.
  auto& sim = stats.stages[static_cast<std::size_t>(Stage::Simulate)];
  sim.count = 50;
  sim.p99_us = 250.0;
  r = monitor.evaluate(stats, 2.0);
  EXPECT_EQ(r.rule(HealthRule::kCacheHitRate).raw, HealthLevel::kCritical);
  EXPECT_EQ(r.rule(HealthRule::kStageLatency).raw, HealthLevel::kCritical);
  EXPECT_NE(r.rule(HealthRule::kStageLatency).message.find("simulate"),
            std::string::npos);
}

TEST(HealthMonitor, TraceDropsWarnOnWindowedDelta) {
  HealthMonitor monitor(fast_config());
  FloorStats stats;
  stats.trace_dropped = 40;  // pre-existing drops: no *windowed* delta yet
  HealthReport r = monitor.evaluate(stats, 1.0);
  EXPECT_EQ(r.rule(HealthRule::kTraceDrops).raw, HealthLevel::kOk);
  stats.trace_dropped = 45;
  r = monitor.evaluate(stats, 2.0);
  EXPECT_EQ(r.rule(HealthRule::kTraceDrops).raw, HealthLevel::kWarn);
  stats.trace_dropped = 45;  // window slides past the burst eventually
  for (int i = 0; i < 10; ++i) r = monitor.evaluate(stats, 3.0 + i);
  EXPECT_EQ(r.rule(HealthRule::kTraceDrops).raw, HealthLevel::kOk);
}

TEST(HealthMonitor, TransitionsAppendEventsAndReportsSerialize) {
  HealthConfig config = fast_config();
  config.watchdog_ms = 10;
  HealthMonitor monitor(config);
  FloorStats stats;
  (void)monitor.evaluate(stats, 0.1);
  stats.worker_inflight_age_seconds = {1.0};
  HealthReport r = monitor.evaluate(stats, 0.2);
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].rule, HealthRule::kWorkerWatchdog);
  EXPECT_EQ(r.events[0].from, HealthLevel::kOk);
  EXPECT_EQ(r.events[0].to, HealthLevel::kCritical);
  // Clearing steps down one level at a time: critical -> warn -> ok.
  stats.worker_inflight_age_seconds = {0.0};
  r = monitor.evaluate(stats, 0.3);
  ASSERT_EQ(r.events.size(), 2u);  // the log carries forward
  EXPECT_EQ(r.events[1].to, HealthLevel::kWarn);
  r = monitor.evaluate(stats, 0.4);
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.events[2].to, HealthLevel::kOk);

  const std::string json = r.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"overall\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"HL006\""), std::string::npos);
  EXPECT_NE(json.find("\"events\":[{"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one line

  const std::string text = monitor.last_report().to_string();
  EXPECT_EQ(text.find("health: ok"), 0u);
}

// --- Flight recorder --------------------------------------------------------

TEST(FlightRecorder, WritesACompleteAtomicBundle) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "casbus_incidents";
  fs::remove_all(dir);

  obs::TraceRecorder trace(8);
  trace.record(obs::TraceSpan{"span", "stage", nullptr, nullptr, 0, 0, 1, 2});
  IncidentInputs inputs;
  inputs.rule_id = "HL006";
  inputs.t_seconds = 1.25;
  inputs.stats_json = "{\"completed\":3}";
  inputs.health_json = "{\"overall\":\"critical\"}";
  inputs.timeseries_json = "{\"samples\":0}";
  inputs.trace = &trace;

  std::string path;
  ASSERT_TRUE(write_incident_bundle(dir.string(), 0, inputs, &path));
  const fs::path bundle(path);
  EXPECT_EQ(bundle.filename().string(), "incident_0000_HL006");
  for (const char* name :
       {"MANIFEST.json", "stats.json", "health.json", "timeseries.json",
        "trace.json"}) {
    EXPECT_TRUE(fs::is_regular_file(bundle / name)) << name;
  }
  // No half-written temp directory left behind.
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().filename().string().find("incident_"),
              std::string::npos);
  }
  std::ifstream manifest(bundle / "MANIFEST.json");
  std::stringstream body;
  body << manifest.rdbuf();
  EXPECT_NE(body.str().find("\"rule\":\"HL006\""), std::string::npos);
  EXPECT_NE(body.str().find("\"seq\":0"), std::string::npos);
  fs::remove_all(dir);
}

TEST(FlightRecorder, FailsCleanlyOnUnwritableDir) {
  IncidentInputs inputs;
  inputs.rule_id = "HL001";
  EXPECT_FALSE(write_incident_bundle(
      "/proc/definitely/not/writable/here", 0, inputs));
}

// --- Session wiring ---------------------------------------------------------

std::vector<JobSpec> slow_batch(std::uint64_t seed, std::size_t count,
                                std::size_t patterns_per_ff) {
  const JobFactory factory(seed);
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    jobs.push_back(factory.make_job(i));
    jobs.back().patterns_per_ff = patterns_per_ff;
  }
  return jobs;
}

/// Health config for session tests: instant hysteresis, and a background
/// interval long enough that only forced health_report() ticks happen —
/// the test controls every hysteresis sample.
HealthConfig session_health(std::size_t watchdog_ms) {
  HealthConfig config;
  config.enabled = true;
  config.interval_ms = 60000;
  config.hysteresis = HysteresisConfig{1, 1, 1};
  config.watchdog_ms = watchdog_ms;
  return config;
}

TEST(SessionHealth, ReportIsDefaultWhenHealthOff) {
  FloorSession session(FloorConfig{});
  EXPECT_EQ(session.sampler(), nullptr);
  const HealthReport r = session.health_report();
  EXPECT_EQ(r.samples, 0u);
  EXPECT_EQ(r.overall, HealthLevel::kOk);
  (void)session.drain();
}

TEST(SessionHealth, HealthImpliesMetricsAndForcedTicksCount) {
  FloorConfig config;
  config.workers = 1;
  config.health = session_health(0);
  FloorSession session(config);
  EXPECT_NE(session.registry(), nullptr);  // health implies metrics
  ASSERT_NE(session.sampler(), nullptr);
  const HealthReport r1 = session.health_report();
  const HealthReport r2 = session.health_report();
  EXPECT_GT(r1.samples, 0u);
  EXPECT_EQ(r2.samples, r1.samples + 1);
  (void)session.drain();
  // health_report stays usable after drain (rules judge an idle floor).
  EXPECT_EQ(session.health_report().overall, HealthLevel::kOk);
}

TEST(SessionHealth, WatchdogTripsOnSlowJobThenClearsAfterDrain) {
  FloorConfig config;
  config.workers = 1;
  config.health = session_health(1);  // 1 ms deadline, jobs take 10s of ms
  FloorSession session(config);
  const auto jobs = slow_batch(91, 6, 6);
  for (const JobSpec& spec : jobs) ASSERT_TRUE(session.submit(spec));

  // Poll while the floor runs: some forced tick must land >1 ms into a
  // job (each takes tens of ms), tripping HL006 with 1-sample hysteresis.
  bool tripped = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!tripped && std::chrono::steady_clock::now() < deadline &&
         session.completed() < jobs.size()) {
    tripped = session.health_report().rule(HealthRule::kWorkerWatchdog)
                  .level == HealthLevel::kCritical;
  }
  EXPECT_TRUE(tripped) << "watchdog never saw an in-flight job older than "
                          "1 ms across six multi-ms jobs";
  (void)session.drain();

  // Idle floor: one calm forced tick per step walks it back to ok.
  HealthReport report = session.health_report();
  for (int i = 0; i < 4 && report.overall != HealthLevel::kOk; ++i)
    report = session.health_report();
  EXPECT_EQ(report.rule(HealthRule::kWorkerWatchdog).level,
            HealthLevel::kOk);
  // The trip is in the transition log with its stable id semantics.
  bool saw_critical_event = false;
  for (const HealthEvent& ev : report.events)
    saw_critical_event = saw_critical_event ||
                         (ev.rule == HealthRule::kWorkerWatchdog &&
                          ev.to == HealthLevel::kCritical);
  EXPECT_TRUE(saw_critical_event);
}

TEST(SessionHealth, CriticalTransitionWritesIncidentBundle) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "casbus_session_inc";
  fs::remove_all(dir);

  FloorConfig config;
  config.workers = 1;
  config.trace_capacity = 256;
  config.health = session_health(1);
  config.health.incident_dir = dir.string();
  FloorSession session(config);
  const auto jobs = slow_batch(92, 6, 6);
  for (const JobSpec& spec : jobs) ASSERT_TRUE(session.submit(spec));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (session.health_report().incidents_written == 0 &&
         std::chrono::steady_clock::now() < deadline &&
         session.completed() < jobs.size()) {
  }
  (void)session.drain();

  const HealthReport report = session.health_report();
  ASSERT_GT(report.incidents_written, 0u);
  std::size_t bundles = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++bundles;
    EXPECT_EQ(entry.path().filename().string().find("incident_"), 0u);
    for (const char* name : {"MANIFEST.json", "stats.json", "health.json",
                             "timeseries.json", "trace.json"}) {
      EXPECT_TRUE(fs::is_regular_file(entry.path() / name))
          << entry.path() << '/' << name;
    }
  }
  EXPECT_EQ(bundles, report.incidents_written);
  EXPECT_LE(bundles, config.health.max_incidents);
  fs::remove_all(dir);
}

TEST(SessionHealth, StatsJsonCarriesTheNewWatchdogAndQueueFields) {
  FloorConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  FloorSession session(config);
  (void)session.drain();
  const FloorStats stats = session.stats_snapshot();
  EXPECT_EQ(stats.queue.capacity, 8u);
  EXPECT_EQ(stats.worker_inflight_age_seconds.size(), 2u);
  EXPECT_EQ(stats.worker_heartbeats.size(), 2u);
  const std::string json = stats.to_json();
  EXPECT_NE(json.find("\"elapsed_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":8"), std::string::npos);
  EXPECT_NE(json.find("\"worker_inflight_age_seconds\":["),
            std::string::npos);
  EXPECT_NE(json.find("\"worker_heartbeats\":["), std::string::npos);
}

// --- The determinism contract (the layer's acceptance bar) ------------------

TEST(SessionHealth, DeterministicSummaryIdenticalWithHealthOnOrOff) {
  const auto jobs = slow_batch(93, 8, 1);
  FloorConfig off;
  off.workers = 1;
  std::string reference;
  {
    FloorSession session(off);
    for (const JobSpec& spec : jobs) ASSERT_TRUE(session.submit(spec));
    reference = session.drain().deterministic_summary();
  }

  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    FloorConfig on;
    on.workers = workers;
    on.trace_capacity = 256;
    on.health = session_health(1);   // watchdog armed, sampling fast
    on.health.interval_ms = 1;       // hammer the sampler while running
    FloorSession session(on);
    for (const JobSpec& spec : jobs) ASSERT_TRUE(session.submit(spec));
    while (session.completed() < jobs.size())
      (void)session.health_report();  // forced ticks during execution too
    EXPECT_EQ(session.drain().deterministic_summary(), reference)
        << "health monitoring changed a deterministic result at workers="
        << workers;
  }
}

}  // namespace
}  // namespace casbus::floor
