/// \file bench_util.hpp
/// Shared helpers for the experiment harnesses: the paper's Table 1 rows,
/// reference SoC core sets, and common printing.

#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "sched/time_model.hpp"
#include "tpg/synthcore.hpp"

namespace casbus::bench {

/// One row of the paper's Table 1 (CAS synthesis results).
struct Table1Row {
  unsigned n, p;
  std::uint64_t m;
  unsigned k;
  unsigned paper_gates;
};

/// The twelve rows exactly as printed in the paper.
inline const std::vector<Table1Row>& table1_rows() {
  static const std::vector<Table1Row> rows = {
      {3, 1, 5, 3, 16},     {4, 1, 6, 3, 23},    {4, 2, 14, 4, 64},
      {4, 3, 26, 5, 118},   {5, 1, 7, 3, 28},    {5, 2, 22, 5, 85},
      {5, 3, 62, 6, 205},   {6, 1, 8, 3, 33},    {6, 2, 32, 5, 134},
      {6, 3, 122, 7, 280},  {6, 5, 722, 10, 1154}, {8, 4, 1682, 11, 4400},
  };
  return rows;
}

/// A medium reference SoC (10 cores) used by the scheduling experiments:
/// chain lengths and pattern counts in the range of late-90s cores.
inline std::vector<sched::CoreTestSpec> reference_soc_cores() {
  return {
      sched::CoreTestSpec{"cpu", {128, 121, 115, 96}, 256, 0},
      sched::CoreTestSpec{"dsp", {84, 80, 77}, 192, 0},
      sched::CoreTestSpec{"mpeg", {140, 133}, 210, 0},
      sched::CoreTestSpec{"usb", {42, 40}, 96, 0},
      sched::CoreTestSpec{"uart", {24}, 48, 0},
      sched::CoreTestSpec{"gpio", {16}, 32, 0},
      sched::CoreTestSpec{"crypto", {96, 90, 88, 85}, 300, 0},
      sched::CoreTestSpec{"lbist_a", {}, 0, 8192},
      sched::CoreTestSpec{"lbist_b", {}, 0, 4096},
      sched::CoreTestSpec{"sram", {}, 0, 2560},
  };
}

/// Small synthetic-core spec for cycle-accurate experiments.
inline tpg::SyntheticCoreSpec small_spec(std::uint64_t seed,
                                         std::size_t chains,
                                         std::size_t ffs = 12,
                                         std::size_t gates = 48) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 4;
  spec.n_outputs = 4;
  spec.n_flipflops = ffs;
  spec.n_gates = gates;
  spec.n_chains = chains;
  spec.seed = seed;
  return spec;
}

/// Prints an experiment banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << " — " << title << " ===\n\n";
}

}  // namespace casbus::bench
