/// \file bench_util.hpp
/// Shared helpers for the experiment harnesses: the paper's Table 1 rows,
/// reference SoC core sets, and common printing.

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sched/time_model.hpp"
#include "tpg/synthcore.hpp"

namespace casbus::bench {

/// One row of the paper's Table 1 (CAS synthesis results).
struct Table1Row {
  unsigned n, p;
  std::uint64_t m;
  unsigned k;
  unsigned paper_gates;
};

/// The twelve rows exactly as printed in the paper.
inline const std::vector<Table1Row>& table1_rows() {
  static const std::vector<Table1Row> rows = {
      {3, 1, 5, 3, 16},     {4, 1, 6, 3, 23},    {4, 2, 14, 4, 64},
      {4, 3, 26, 5, 118},   {5, 1, 7, 3, 28},    {5, 2, 22, 5, 85},
      {5, 3, 62, 6, 205},   {6, 1, 8, 3, 33},    {6, 2, 32, 5, 134},
      {6, 3, 122, 7, 280},  {6, 5, 722, 10, 1154}, {8, 4, 1682, 11, 4400},
  };
  return rows;
}

/// A medium reference SoC (10 cores) used by the scheduling experiments:
/// chain lengths and pattern counts in the range of late-90s cores.
inline std::vector<sched::CoreTestSpec> reference_soc_cores() {
  return {
      sched::CoreTestSpec{"cpu", {128, 121, 115, 96}, 256, 0},
      sched::CoreTestSpec{"dsp", {84, 80, 77}, 192, 0},
      sched::CoreTestSpec{"mpeg", {140, 133}, 210, 0},
      sched::CoreTestSpec{"usb", {42, 40}, 96, 0},
      sched::CoreTestSpec{"uart", {24}, 48, 0},
      sched::CoreTestSpec{"gpio", {16}, 32, 0},
      sched::CoreTestSpec{"crypto", {96, 90, 88, 85}, 300, 0},
      sched::CoreTestSpec{"lbist_a", {}, 0, 8192},
      sched::CoreTestSpec{"lbist_b", {}, 0, 4096},
      sched::CoreTestSpec{"sram", {}, 0, 2560},
  };
}

/// Small synthetic-core spec for cycle-accurate experiments.
inline tpg::SyntheticCoreSpec small_spec(std::uint64_t seed,
                                         std::size_t chains,
                                         std::size_t ffs = 12,
                                         std::size_t gates = 48) {
  tpg::SyntheticCoreSpec spec;
  spec.n_inputs = 4;
  spec.n_outputs = 4;
  spec.n_flipflops = ffs;
  spec.n_gates = gates;
  spec.n_chains = chains;
  spec.seed = seed;
  return spec;
}

/// Prints an experiment banner.
inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << " — " << title << " ===\n\n";
}

/// Escapes a string for embedding in a JSON string literal.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Machine-readable experiment output. Collects flat
/// name/params/metric/value records and flushes them to
/// `BENCH_<bench>.json` in the working directory when destroyed (RAII),
/// so every bench run leaves a parseable artifact next to its
/// human-readable stdout report.
///
/// Usage:
///   JsonReporter rep("table1");
///   rep.record("row", {{"n", "4"}, {"p", "2"}}, "ge_opt", 64.0);
///   // flushed to BENCH_table1.json at end of main
class JsonReporter {
 public:
  using Params = std::vector<std::pair<std::string, std::string>>;

  explicit JsonReporter(std::string bench_name)
      : bench_(std::move(bench_name)),
        path_("BENCH_" + bench_ + ".json") {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() { flush(); }

  /// Appends one record; \p params tag the experimental point (bus width,
  /// core, session, ...) and \p metric names the measured quantity.
  void record(const std::string& name, const Params& params,
              const std::string& metric, double value) {
    records_.push_back(Record{name, params, metric, value});
  }

  /// Convenience overload for integer-valued metrics.
  void record(const std::string& name, const Params& params,
              const std::string& metric, std::uint64_t value) {
    record(name, params, metric, static_cast<double>(value));
  }

  /// Path of the artifact this reporter writes.
  const std::string& path() const { return path_; }

  std::size_t size() const { return records_.size(); }

  /// Writes the artifact. Idempotent — called automatically from the
  /// destructor; call earlier to flush before a potentially aborting step.
  void flush() const {
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "JsonReporter: cannot write " << path_ << "\n";
      return;
    }
    out << "{\n"
        << "  \"bench\": \"" << json_escape(bench_) << "\",\n"
        << "  \"schema_version\": 1,\n"
        << "  \"records\": [";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << (i == 0 ? "" : ",") << "\n    {\"name\": \""
          << json_escape(r.name) << "\", \"params\": {";
      for (std::size_t j = 0; j < r.params.size(); ++j)
        out << (j == 0 ? "" : ", ") << "\"" << json_escape(r.params[j].first)
            << "\": \"" << json_escape(r.params[j].second) << "\"";
      out << "}, \"metric\": \"" << json_escape(r.metric)
          << "\", \"value\": " << format_json_number(r.value) << "}";
    }
    out << "\n  ]\n}\n";
  }

 private:
  struct Record {
    std::string name;
    Params params;
    std::string metric;
    double value;
  };

  /// JSON has no NaN/Inf literals; non-finite values become null.
  static std::string format_json_number(double v) {
    if (!std::isfinite(v)) return "null";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
  }

  std::string bench_;
  std::string path_;
  std::vector<Record> records_;
};

}  // namespace casbus::bench
