/// \file bench_maintenance.cpp
/// Experiment C4 — paper §4: "In case of maintenance test, it is possible
/// to test some embedded cores while others are in normal functioning
/// mode. This is very useful when, e.g., an embedded memory test is
/// periodically required."
///
/// Scenario: two embedded memories; one carries live functional traffic
/// the whole time while the other undergoes periodic MARCH C- sessions
/// over the CAS-BUS; a fault injected between sessions is caught by the
/// next periodic test; the live memory's traffic is never disturbed.

#include <iostream>

#include "bench_util.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "soc/traffic.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;
  using namespace casbus::soc;

  banner("C4", "Maintenance test: memory under test, system running");

  JsonReporter rep("maintenance");

  auto soc = SocBuilder(4)
                 .add_memory_core("ram_maint", 32, 8)
                 .add_memory_core("ram_live", 32, 8)
                 .add_scan_core("logic", small_spec(701, 2, 12))
                 .build();
  MemoryTraffic traffic(*soc, 1, 2024);
  SocTester tester(*soc);
  MemoryCore& maint = soc->cores()[0].as_memory();

  Table table({"phase", "cycles", "traffic reads checked",
               "traffic errors", "MBIST verdict"},
              {Align::Left, Align::Right, Align::Right, Align::Right,
               Align::Left});

  traffic.set_enabled(true);
  tester.step(200);
  table.add_row({"functional warm-up", std::to_string(tester.cycles()),
                 std::to_string(traffic.reads_checked()),
                 std::to_string(traffic.mismatches()), "-"});

  // Periodic maintenance session #1 (fault-free).
  const auto r1 = tester.run_bist(0, 3, maint.mbist_cycles());
  table.add_row({"maintenance session 1",
                 std::to_string(r1.configure_cycles + r1.test_cycles),
                 std::to_string(traffic.reads_checked()),
                 std::to_string(traffic.mismatches()),
                 r1.pass ? "PASS" : "FAIL"});

  // Mission mode continues; a cell fails in the field.
  tester.step(300);
  maint.inject_stuck_bit(17, 5, false);

  // Periodic maintenance session #2 must catch it.
  const auto r2 = tester.run_bist(0, 3, maint.mbist_cycles());
  table.add_row({"maintenance session 2 (stuck bit injected)",
                 std::to_string(r2.configure_cycles + r2.test_cycles),
                 std::to_string(traffic.reads_checked()),
                 std::to_string(traffic.mismatches()),
                 r2.pass ? "PASS (MISSED FAULT!)" : "FAIL (fault caught)"});

  tester.step(100);
  table.add_row({"post-test mission mode", std::to_string(tester.cycles()),
                 std::to_string(traffic.reads_checked()),
                 std::to_string(traffic.mismatches()), "-"});

  table.print(std::cout);

  const bool ok = r1.pass && !r2.pass && traffic.mismatches() == 0 &&
                  traffic.reads_checked() > 0;
  rep.record("maintenance", {{"session", "1"}}, "cycles",
             r1.configure_cycles + r1.test_cycles);
  rep.record("maintenance", {{"session", "1"}}, "mbist_pass",
             std::uint64_t{r1.pass ? 1u : 0u});
  rep.record("maintenance", {{"session", "2"}, {"fault", "stuck_bit"}},
             "cycles", r2.configure_cycles + r2.test_cycles);
  rep.record("maintenance", {{"session", "2"}, {"fault", "stuck_bit"}},
             "fault_caught", std::uint64_t{!r2.pass ? 1u : 0u});
  rep.record("summary", {}, "traffic_reads_checked",
             static_cast<std::uint64_t>(traffic.reads_checked()));
  rep.record("summary", {}, "traffic_mismatches",
             static_cast<std::uint64_t>(traffic.mismatches()));
  rep.record("summary", {}, "claim_reproduced",
             std::uint64_t{ok ? 1u : 0u});
  std::cout << "\nresult: " << (ok ? "CLAIM REPRODUCED" : "UNEXPECTED")
            << " — the memory was tested in-system twice (second run "
               "caught the injected stuck bit) while "
            << traffic.reads_checked()
            << " live read-backs on the neighbouring memory saw 0 "
               "errors.\n";
  return ok ? 0 : 1;
}
