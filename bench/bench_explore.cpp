/// \file bench_explore.cpp
/// E1 — Scheduling at industrial scale: the paper claims CAS-BUS *scales*,
/// so this harness finally measures it. Synthetic SoC populations of 10,
/// 100, and 1000 cores (plus profile variants at 100) are scheduled with
/// the polynomial heuristics and the branch-and-bound engine; for every
/// population the artifact records test cycles, the certified optimality
/// gap, wall time, and wall time *per core* (the scalability axis), and a
/// width x strategy Pareto sweep is reported for the 100-core SoC.
///
/// Gates consumed by CI (bench-trajectory job):
///   - 10-core mixed: branch-and-bound proves optimality and matches
///     exact_schedule (gap_vs_exact == 0),
///   - 1000-core mixed: a schedule is produced within the node budget with
///     a finite certified bound_gap,
///   - parallel_bb / parallel_bb_throughput (check_perf_gates.py
///     --explore): the multi-threaded search ladder must certify a
///     1000-core gap strictly below the single-thread population row, and
///     nodes/sec must scale with threads on hosts with enough hardware
///     (hw-aware: >= 2.5x at 8 hw threads, >= 1.8x at 4, skipped below).
///
/// The parallel section exercises both halves of the engine's contract
/// (see explore/branch_bound.hpp): the *gap ladder* gives each thread
/// count T a budget of 600*T nodes — the work a fixed wall-clock slice
/// buys on a T-way search — and records the certified gap trajectory;
/// the *throughput rows* run one fixed 4800-node search at every T, which
/// deterministic mode guarantees is byte-identical, so the wall-time
/// ratio is a pure measure of engine scaling.

#include <chrono>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "explore/explorer.hpp"
#include "sched/exact.hpp"
#include "sched/lower_bound.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace casbus;
  using namespace casbus::explore;
  using casbus::bench::JsonReporter;

  bench::banner("E1", "Design-space exploration on synthetic SoCs");
  JsonReporter rep("explore");
  const SocGenerator generator(2000);

  // --- Population sweep: scaling of the scheduling engines -------------
  struct Population {
    std::size_t cores;
    SocProfile profile;
    std::size_t node_budget;
  };
  const std::vector<Population> populations = {
      {10, SocProfile::Mixed, 50000},
      {100, SocProfile::Mixed, 4000},
      {100, SocProfile::ScanHeavy, 4000},
      {100, SocProfile::BistHeavy, 4000},
      {1000, SocProfile::Mixed, 600},
  };

  Table table({"cores", "profile", "strategy", "cycles", "gap", "optimal",
               "sched s", "us/core"},
              {Align::Right, Align::Left, Align::Left, Align::Right,
               Align::Right, Align::Right, Align::Right, Align::Right});

  for (const Population& pop : populations) {
    const GeneratedSoc soc = generator.generate(pop.cores, pop.profile);
    const sched::SessionScheduler scheduler(soc.cores,
                                            soc.suggested_width);
    const std::uint64_t global_lb = sched::schedule_lower_bound(
        soc.cores, soc.suggested_width, scheduler.reconfig_cost());

    const JsonReporter::Params base = {
        {"cores", std::to_string(pop.cores)},
        {"profile", profile_name(pop.profile)},
        {"width", std::to_string(soc.suggested_width)}};

    // Polynomial heuristics.
    for (const sched::Strategy strategy :
         {sched::Strategy::Greedy, sched::Strategy::Phased}) {
      const auto start = std::chrono::steady_clock::now();
      const std::uint64_t cycles =
          scheduler.schedule_with(strategy).total_cycles;
      const double secs = seconds_since(start);
      const double gap =
          static_cast<double>(cycles) / static_cast<double>(global_lb) -
          1.0;
      JsonReporter::Params params = base;
      params.emplace_back("strategy", sched::strategy_name(strategy));
      rep.record("population", params, "cycles", cycles);
      rep.record("population", params, "bound_gap", gap);
      rep.record("population", params, "schedule_seconds", secs);
      rep.record("population", params, "seconds_per_core",
                 secs / static_cast<double>(pop.cores));
      table.add_row({std::to_string(pop.cores),
                     profile_name(pop.profile),
                     sched::strategy_name(strategy),
                     std::to_string(cycles),
                     format_double(100.0 * gap, 2) + "%", "-",
                     format_double(secs, 3),
                     format_double(1e6 * secs / pop.cores, 1)});
    }

    // Branch and bound.
    BranchBoundConfig config;
    config.node_budget = pop.node_budget;
    const auto start = std::chrono::steady_clock::now();
    const BranchBoundResult bb =
        BranchBoundScheduler(scheduler, config).run();
    const double secs = seconds_since(start);

    JsonReporter::Params params = base;
    params.emplace_back("strategy", "branch_bound");
    rep.record("population", params, "cycles", bb.best_cost);
    rep.record("population", params, "lower_bound", bb.lower_bound);
    rep.record("population", params, "bound_gap", bb.gap());
    rep.record("population", params, "optimal",
               std::uint64_t{bb.optimal ? 1u : 0u});
    rep.record("population", params, "nodes_expanded", bb.nodes_expanded);
    rep.record("population", params, "schedule_seconds", secs);
    rep.record("population", params, "seconds_per_core",
               secs / static_cast<double>(pop.cores));
    table.add_row({std::to_string(pop.cores), profile_name(pop.profile),
                   "branch_bound", std::to_string(bb.best_cost),
                   format_double(100.0 * bb.gap(), 2) + "%",
                   bb.optimal ? "yes" : "-", format_double(secs, 3),
                   format_double(1e6 * secs / pop.cores, 1)});

    // Ground truth on the paper-sized SoC: B&B must match exact_schedule.
    if (pop.cores <= 10 && pop.profile == SocProfile::Mixed) {
      const sched::ExactResult exact = sched::exact_schedule(scheduler);
      const double vs_exact =
          static_cast<double>(bb.best_cost) /
              static_cast<double>(exact.schedule.total_cycles) -
          1.0;
      rep.record("population", params, "gap_vs_exact", vs_exact);
      rep.record("population", params, "exact_heuristic_gap",
                 exact.heuristic_gap);
      std::cout << "10-core ground truth: B&B " << bb.best_cost
                << " cycles vs exact "
                << exact.schedule.total_cycles << " (gap "
                << format_double(100.0 * vs_exact, 4) << "%)\n";
    }
  }
  table.print(std::cout);

  // --- Parallel branch and bound on the 1000-core mixed SoC -------------
  {
    const GeneratedSoc big = generator.generate(1000, SocProfile::Mixed);
    const sched::SessionScheduler scheduler(big.cores, big.suggested_width);
    const unsigned hw = std::thread::hardware_concurrency();
    const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

    std::cout << "\nParallel B&B (1000-core mixed SoC, " << hw
              << " hardware threads):\n\n";
    Table ladder({"sched_threads", "node budget", "cycles", "gap",
                  "nodes/s", "sched s"},
                 {Align::Right, Align::Right, Align::Right, Align::Right,
                  Align::Right, Align::Right});

    // Gap ladder: budget 600*T — the node count a fixed wall-clock slice
    // buys on a T-way frontier — with a dense dive discipline (one greedy
    // completion every 8 expansions) so the incumbent keeps pace with the
    // growing tree. The certified gap must only ever move down the ladder
    // relative to the single-thread population row above.
    for (const std::size_t threads : thread_counts) {
      BranchBoundConfig config;
      config.node_budget = 600 * threads;
      config.dive_interval = 8;
      config.max_dives = config.node_budget / 8;
      config.threads = threads;
      const auto start = std::chrono::steady_clock::now();
      const BranchBoundResult bb =
          BranchBoundScheduler(scheduler, config).run();
      const double secs = seconds_since(start);
      const double nodes_per_sec =
          secs > 0.0 ? static_cast<double>(bb.nodes_expanded) / secs : 0.0;

      const JsonReporter::Params params = {
          {"cores", "1000"},
          {"profile", "mixed"},
          {"width", std::to_string(big.suggested_width)},
          {"sched_threads", std::to_string(threads)}};
      rep.record("parallel_bb", params, "cycles", bb.best_cost);
      rep.record("parallel_bb", params, "lower_bound", bb.lower_bound);
      rep.record("parallel_bb", params, "bound_gap", bb.gap());
      rep.record("parallel_bb", params, "nodes_expanded", bb.nodes_expanded);
      rep.record("parallel_bb", params, "dives", bb.dives);
      rep.record("parallel_bb", params, "schedule_seconds", secs);
      rep.record("parallel_bb", params, "nodes_per_sec", nodes_per_sec);
      ladder.add_row({std::to_string(threads),
                      std::to_string(config.node_budget),
                      std::to_string(bb.best_cost),
                      format_double(100.0 * bb.gap(), 2) + "%",
                      format_double(nodes_per_sec, 0),
                      format_double(secs, 3)});
    }
    ladder.print(std::cout);

    // Fixed-work throughput: the same 4800-node search at every thread
    // count. Deterministic mode pins the incumbent and certified bound
    // byte-identical across the sweep (recorded as deterministic_match),
    // so wall time is the only thing allowed to change — nodes/sec
    // speedup vs the 1-thread run is the engine-scaling number the
    // hw-aware CI gate consumes (alongside hw_threads, because hosted
    // runners differ).
    std::cout << "\nFixed-work scaling (4800-node search):\n\n";
    Table scaling({"sched_threads", "nodes/s", "speedup", "identical"},
                  {Align::Right, Align::Right, Align::Right, Align::Right});
    double base_nodes_per_sec = 0.0;
    std::uint64_t base_cost = 0;
    std::uint64_t base_lb = 0;
    for (const std::size_t threads : thread_counts) {
      BranchBoundConfig config;
      config.node_budget = 4800;
      config.dive_interval = 8;
      config.max_dives = config.node_budget / 8;
      config.threads = threads;
      const auto start = std::chrono::steady_clock::now();
      const BranchBoundResult bb =
          BranchBoundScheduler(scheduler, config).run();
      const double secs = seconds_since(start);
      const double nodes_per_sec =
          secs > 0.0 ? static_cast<double>(bb.nodes_expanded) / secs : 0.0;
      if (threads == 1) {
        base_nodes_per_sec = nodes_per_sec;
        base_cost = bb.best_cost;
        base_lb = bb.lower_bound;
      }
      const bool identical =
          bb.best_cost == base_cost && bb.lower_bound == base_lb;
      const double speedup = base_nodes_per_sec > 0.0
                                 ? nodes_per_sec / base_nodes_per_sec
                                 : 0.0;

      const JsonReporter::Params params = {
          {"cores", "1000"},
          {"profile", "mixed"},
          {"width", std::to_string(big.suggested_width)},
          {"sched_threads", std::to_string(threads)}};
      rep.record("parallel_bb_throughput", params, "nodes_per_sec",
                 nodes_per_sec);
      rep.record("parallel_bb_throughput", params, "schedule_seconds", secs);
      rep.record("parallel_bb_throughput", params, "speedup_vs_1_thread",
                 speedup);
      rep.record("parallel_bb_throughput", params, "hw_threads",
                 std::uint64_t{hw});
      rep.record("parallel_bb_throughput", params, "deterministic_match",
                 std::uint64_t{identical ? 1u : 0u});
      scaling.add_row({std::to_string(threads),
                       format_double(nodes_per_sec, 0),
                       format_double(speedup, 2) + "x",
                       identical ? "yes" : "NO"});
    }
    scaling.print(std::cout);
  }

  // --- Width x strategy Pareto sweep on the 100-core mixed SoC ----------
  std::cout << "\nPareto sweep (100-core mixed SoC):\n\n";
  const GeneratedSoc soc = generator.generate(100, SocProfile::Mixed);
  const DesignSpaceExplorer explorer(soc);
  ExploreConfig config;
  config.widths = {8, 12, 16, 24, 32};
  config.strategies = {sched::Strategy::Greedy, sched::Strategy::Phased,
                       sched::Strategy::BranchBound};
  config.branch_bound.node_budget = 2000;
  const ExploreReport report = explorer.sweep(config);

  Table pareto({"width", "strategy", "cycles", "gap", "area (GE)",
                "pareto"},
               {Align::Right, Align::Left, Align::Right, Align::Right,
                Align::Right, Align::Right});
  for (const ExplorePoint& p : report.points) {
    pareto.add_row({std::to_string(p.width),
                    sched::strategy_name(p.strategy),
                    std::to_string(p.test_cycles),
                    format_double(100.0 * p.gap, 2) + "%",
                    format_double(p.bus_area_ge, 0),
                    p.pareto ? "*" : ""});
    const JsonReporter::Params params = {
        {"cores", "100"},
        {"profile", "mixed"},
        {"width", std::to_string(p.width)},
        {"strategy", sched::strategy_name(p.strategy)}};
    rep.record("pareto", params, "cycles", p.test_cycles);
    rep.record("pareto", params, "bus_area_ge", p.bus_area_ge);
    rep.record("pareto", params, "gap", p.gap);
    rep.record("pareto", params, "pareto",
               std::uint64_t{p.pareto ? 1u : 0u});
  }
  pareto.print(std::cout);

  std::cout << "\nThe sweep is the paper's §3.2 trade-off at industrial"
               " scale: widening the bus keeps buying test time until the"
               " schedule is bound-limited, while CAS area grows"
               " super-linearly — the Pareto frontier picks the width a"
               " test integrator would actually ship.\n";
  return 0;
}
