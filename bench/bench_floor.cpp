/// \file bench_floor.cpp
/// Experiment FLOOR — test-floor service throughput: scaling, streaming,
/// and repeated-spec caching.
///
/// Part 1 (scaling): streams one fixed, scenario-diverse batch of test
/// programs (the default scan:4,bist:2,hier:1,maint:1 mix) through the
/// TestFloor worker pool at 1, 2, 4, ... workers, reporting programs/sec
/// and sim-cycles/sec per sweep point plus the speedup over the 1-worker
/// baseline. Also checks the floor's determinism rule on the way: every
/// sweep point must produce the same deterministic aggregate summary
/// byte-for-byte.
///
/// Part 2 (streaming): drives the live FloorSession API — jobs submitted
/// while the workers run, producer throttled by the bounded queue — and
/// verifies the streamed report is byte-identical to the batch adapter's.
///
/// Part 3 (cache): a repeated-spec mix run cold, with the program tier
/// only, and with full verdict reuse, reporting each tier's honest
/// speedup. For paper-sized SoCs scheduling is cheap, so the program tier
/// is expected to be ~1x; verdict reuse is the production win.
///
/// CI gates on the 4-vs-1-worker speedup (> 1.8x on the >= 4-vCPU
/// runners) and on the repeated-spec mix beating the cold mix by >= 1.3x;
/// on smaller machines the sweep still runs and records the honest
/// (smaller) ratio.

#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "explore/soc_generator.hpp"
#include "floor/job_factory.hpp"
#include "floor/session.hpp"
#include "floor/test_floor.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;
  using namespace casbus::floor;

  banner("FLOOR", "test-floor service: throughput vs worker count");
  JsonReporter rep("floor");

  constexpr std::uint64_t kSeed = 20000314;  // DATE 2000 vintage
  constexpr std::size_t kJobs = 48;
  const JobFactory factory(kSeed);
  auto jobs = factory.make_jobs(kJobs);
  // Heavier per-job simulation than the defaults, so queue/thread overhead
  // is negligible against the cycle-accurate work.
  for (JobSpec& job : jobs) job.patterns_per_ff = 2;

  // Sweep 1 -> hardware concurrency, always including the 1/2/4 points the
  // scaling gate reads (running 4 workers on fewer cores is still valid —
  // the speedup is just honest about the hardware).
  std::vector<std::size_t> sweep = {1, 2, 4};
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (std::size_t w = 8; w <= hw; w *= 2) sweep.push_back(w);
  if (hw > 4 && std::find(sweep.begin(), sweep.end(), hw) == sweep.end())
    sweep.push_back(hw);

  Table table({"workers", "wall s", "programs/s", "Msim-cycles/s",
               "speedup", "pass"},
              {Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Right});

  double base_pps = 0.0;
  double speedup_at_4 = 0.0;
  std::string reference_summary;
  bool deterministic = true;
  bool all_pass = true;

  for (const std::size_t workers : sweep) {
    const TestFloor floor(FloorConfig{workers});
    const FloorReport report = floor.run(jobs);

    const double pps = report.programs_per_sec();
    if (workers == 1) base_pps = pps;
    const double speedup = base_pps > 0.0 ? pps / base_pps : 0.0;
    if (workers == 4) speedup_at_4 = speedup;

    if (reference_summary.empty())
      reference_summary = report.deterministic_summary();
    else if (report.deterministic_summary() != reference_summary)
      deterministic = false;
    all_pass = all_pass && report.all_pass();

    table.add_row({std::to_string(workers), format_double(report.wall_seconds, 3),
                   format_double(pps, 1),
                   format_double(report.sim_cycles_per_sec() / 1e6, 2),
                   format_double(speedup, 2),
                   std::to_string(report.total.passed) + "/" +
                       std::to_string(report.total.jobs)});

    const JsonReporter::Params params = {
        {"workers", std::to_string(workers)},
        {"jobs", std::to_string(kJobs)},
        {"mix", "scan:4,bist:2,hier:1,maint:1"},
        {"seed", std::to_string(kSeed)}};
    rep.record("scaling", params, "wall_seconds", report.wall_seconds);
    rep.record("scaling", params, "programs_per_sec", pps);
    rep.record("scaling", params, "sim_cycles_per_sec",
               report.sim_cycles_per_sec());
    rep.record("scaling", params, "speedup_vs_1_worker", speedup);
    rep.record("scaling", params, "jobs_passed",
               static_cast<std::uint64_t>(report.total.passed));

    // Per-scenario and per-stage breakdowns, recorded once (the scenario
    // aggregates are identical at every sweep point by the determinism
    // rule, which is verified below; stage seconds are timing and simply
    // most meaningful serially).
    if (workers == 1) {
      for (std::size_t k = 0; k < kScenarioCount; ++k) {
        const ScenarioStats& s = report.scenario[k];
        if (s.jobs == 0) continue;
        const JsonReporter::Params sp = {
            {"scenario", scenario_name(static_cast<ScenarioKind>(k))},
            {"seed", std::to_string(kSeed)}};
        rep.record("scenario", sp, "jobs",
                   static_cast<std::uint64_t>(s.jobs));
        rep.record("scenario", sp, "passed",
                   static_cast<std::uint64_t>(s.passed));
        rep.record("scenario", sp, "sim_cycles", s.sim_cycles);
        rep.record("scenario", sp, "worst_deviation", s.worst_deviation);
      }
      for (std::size_t s = 0; s < kStageCount; ++s) {
        rep.record("stages",
                   {{"stage", stage_name(static_cast<Stage>(s))},
                    {"seed", std::to_string(kSeed)}},
                   "seconds", report.stage_seconds[s]);
      }
    }
  }

  table.print(std::cout);
  std::cout << "\nhardware threads: " << hw
            << "\nspeedup at 4 workers: " << format_double(speedup_at_4, 2)
            << "x\ndeterministic aggregates across worker counts: "
            << (deterministic ? "yes" : "NO — BUG") << "\n";

  rep.record("summary", {{"hardware_threads", std::to_string(hw)}},
             "speedup_at_4_workers", speedup_at_4);
  rep.record("summary", {{"hardware_threads", std::to_string(hw)}},
             "deterministic_across_worker_counts",
             std::uint64_t{deterministic ? 1u : 0u});

  // --- Part 2: streaming session (submit-while-running) ---------------------
  banner("FLOOR-STREAM", "streaming session vs batch adapter");

  const auto stream_jobs = explore::SocGenerator(kSeed).floor_jobs(
      32, explore::SocProfile::Mixed);
  FloorConfig stream_config;
  stream_config.workers = 4;
  stream_config.queue_capacity = 8;

  const FloorReport batch_ref = TestFloor(stream_config).run(stream_jobs);

  FloorSession session(stream_config);
  std::size_t polled_live = 0;
  bool stream_accepted = true;
  for (const JobSpec& spec : stream_jobs) {
    stream_accepted = stream_accepted && session.submit(spec);
    polled_live += session.poll_results().size();
  }
  const FloorReport streamed = session.drain();

  const bool streaming_deterministic =
      streamed.deterministic_summary() == batch_ref.deterministic_summary();
  std::cout << "streaming: " << streamed.total.jobs << " jobs at "
            << stream_config.workers << " workers, queue capacity "
            << stream_config.queue_capacity << ", "
            << format_double(streamed.programs_per_sec(), 1)
            << " programs/sec (" << polled_live
            << " results polled live)\nstreamed == batch summary: "
            << (streaming_deterministic ? "yes" : "NO — BUG") << "\n";

  const JsonReporter::Params stream_params = {
      {"workers", std::to_string(stream_config.workers)},
      {"queue_capacity", std::to_string(stream_config.queue_capacity)},
      {"jobs", std::to_string(stream_jobs.size())},
      {"seed", std::to_string(kSeed)}};
  rep.record("streaming", stream_params, "programs_per_sec",
             streamed.programs_per_sec());
  rep.record("streaming", stream_params, "wall_seconds",
             streamed.wall_seconds);
  rep.record("streaming", stream_params, "polled_live",
             static_cast<std::uint64_t>(polled_live));
  rep.record("streaming", stream_params, "matches_batch",
             std::uint64_t{streaming_deterministic ? 1u : 0u});

  // --- Part 3: repeated-spec mix through the per-worker caches --------------
  banner("FLOOR-CACHE", "repeated-spec mix: program tier + verdict reuse");

  constexpr std::size_t kCacheJobs = 48;
  constexpr std::size_t kDistinct = 4;
  const JobFactory cache_factory(kSeed);
  std::vector<JobSpec> repeated;
  repeated.reserve(kCacheJobs);
  for (std::size_t i = 0; i < kCacheJobs; ++i) {
    JobSpec spec = cache_factory.make_job(i % kDistinct);
    spec.id = i;
    spec.patterns_per_ff = 2;
    repeated.push_back(spec);
  }

  struct CachePoint {
    const char* label;
    std::size_t cache_capacity;
    bool reuse_verdicts;
  };
  const CachePoint points[] = {
      {"cold", 0, false},
      {"program_tier", 16, false},
      {"warm", 16, true},
  };

  double cold_pps = 0.0;
  double warm_speedup = 0.0;
  bool cache_deterministic = true;
  std::string cache_reference;
  Table cache_table({"config", "wall s", "programs/s", "speedup",
                     "cache hits"},
                    {Align::Left, Align::Right, Align::Right, Align::Right,
                     Align::Right});
  for (const CachePoint& point : points) {
    FloorConfig config;
    config.workers = 4;
    config.cache_capacity = point.cache_capacity;
    config.reuse_verdicts = point.reuse_verdicts;
    const FloorReport report = TestFloor(config).run(repeated);

    const double pps = report.programs_per_sec();
    if (std::string(point.label) == "cold") cold_pps = pps;
    const double speedup = cold_pps > 0.0 ? pps / cold_pps : 0.0;
    if (std::string(point.label) == "warm") warm_speedup = speedup;

    if (cache_reference.empty())
      cache_reference = report.deterministic_summary();
    else if (report.deterministic_summary() != cache_reference)
      cache_deterministic = false;
    all_pass = all_pass && report.all_pass();

    cache_table.add_row({point.label,
                         format_double(report.wall_seconds, 3),
                         format_double(pps, 1), format_double(speedup, 2),
                         std::to_string(report.cache_hits) + "/" +
                             std::to_string(report.total.jobs)});

    const JsonReporter::Params params = {
        {"config", point.label},
        {"workers", "4"},
        {"jobs", std::to_string(kCacheJobs)},
        {"distinct_specs", std::to_string(kDistinct)},
        {"seed", std::to_string(kSeed)}};
    rep.record("cache", params, "programs_per_sec", pps);
    rep.record("cache", params, "wall_seconds", report.wall_seconds);
    rep.record("cache", params, "speedup_vs_cold", speedup);
    rep.record("cache", params, "cache_hits",
               static_cast<std::uint64_t>(report.cache_hits));
    rep.record("cache", params, "cache_hit_rate",
               report.total.jobs
                   ? static_cast<double>(report.cache_hits) /
                         static_cast<double>(report.total.jobs)
                   : 0.0);
  }
  cache_table.print(std::cout);
  std::cout << "\nrepeated-spec warm speedup vs cold: "
            << format_double(warm_speedup, 2)
            << "x\ndeterministic across cache settings: "
            << (cache_deterministic ? "yes" : "NO — BUG") << "\n";

  return deterministic && streaming_deterministic && cache_deterministic &&
                 stream_accepted && all_pass
             ? 0
             : 1;
}
