/// \file bench_floor.cpp
/// Experiment FLOOR — test-floor service throughput scaling.
///
/// Streams one fixed, scenario-diverse batch of test programs (the default
/// scan:4,bist:2,hier:1,maint:1 mix) through the TestFloor worker pool at
/// 1, 2, 4, ... workers, reporting programs/sec and sim-cycles/sec per
/// sweep point plus the speedup over the 1-worker baseline. Also checks
/// the floor's determinism rule on the way: every sweep point must produce
/// the same deterministic aggregate summary byte-for-byte.
///
/// CI gates on the 4-vs-1-worker speedup (> 1.8x on the >= 4-vCPU
/// runners); on smaller machines the sweep still runs and records the
/// honest (smaller) ratio.

#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "floor/job_factory.hpp"
#include "floor/test_floor.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;
  using namespace casbus::floor;

  banner("FLOOR", "test-floor service: throughput vs worker count");
  JsonReporter rep("floor");

  constexpr std::uint64_t kSeed = 20000314;  // DATE 2000 vintage
  constexpr std::size_t kJobs = 48;
  const JobFactory factory(kSeed);
  auto jobs = factory.make_jobs(kJobs);
  // Heavier per-job simulation than the defaults, so queue/thread overhead
  // is negligible against the cycle-accurate work.
  for (JobSpec& job : jobs) job.patterns_per_ff = 2;

  // Sweep 1 -> hardware concurrency, always including the 1/2/4 points the
  // scaling gate reads (running 4 workers on fewer cores is still valid —
  // the speedup is just honest about the hardware).
  std::vector<std::size_t> sweep = {1, 2, 4};
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (std::size_t w = 8; w <= hw; w *= 2) sweep.push_back(w);
  if (hw > 4 && std::find(sweep.begin(), sweep.end(), hw) == sweep.end())
    sweep.push_back(hw);

  Table table({"workers", "wall s", "programs/s", "Msim-cycles/s",
               "speedup", "pass"},
              {Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Right});

  double base_pps = 0.0;
  double speedup_at_4 = 0.0;
  std::string reference_summary;
  bool deterministic = true;
  bool all_pass = true;

  for (const std::size_t workers : sweep) {
    const TestFloor floor(FloorConfig{workers});
    const FloorReport report = floor.run(jobs);

    const double pps = report.programs_per_sec();
    if (workers == 1) base_pps = pps;
    const double speedup = base_pps > 0.0 ? pps / base_pps : 0.0;
    if (workers == 4) speedup_at_4 = speedup;

    if (reference_summary.empty())
      reference_summary = report.deterministic_summary();
    else if (report.deterministic_summary() != reference_summary)
      deterministic = false;
    all_pass = all_pass && report.all_pass();

    table.add_row({std::to_string(workers), format_double(report.wall_seconds, 3),
                   format_double(pps, 1),
                   format_double(report.sim_cycles_per_sec() / 1e6, 2),
                   format_double(speedup, 2),
                   std::to_string(report.total.passed) + "/" +
                       std::to_string(report.total.jobs)});

    const JsonReporter::Params params = {
        {"workers", std::to_string(workers)},
        {"jobs", std::to_string(kJobs)},
        {"mix", "scan:4,bist:2,hier:1,maint:1"},
        {"seed", std::to_string(kSeed)}};
    rep.record("scaling", params, "wall_seconds", report.wall_seconds);
    rep.record("scaling", params, "programs_per_sec", pps);
    rep.record("scaling", params, "sim_cycles_per_sec",
               report.sim_cycles_per_sec());
    rep.record("scaling", params, "speedup_vs_1_worker", speedup);
    rep.record("scaling", params, "jobs_passed",
               static_cast<std::uint64_t>(report.total.passed));

    // Per-scenario breakdown, recorded once (identical at every sweep
    // point by the determinism rule, which is verified below).
    if (workers == 1) {
      for (std::size_t k = 0; k < kScenarioCount; ++k) {
        const ScenarioStats& s = report.scenario[k];
        if (s.jobs == 0) continue;
        const JsonReporter::Params sp = {
            {"scenario", scenario_name(static_cast<ScenarioKind>(k))},
            {"seed", std::to_string(kSeed)}};
        rep.record("scenario", sp, "jobs",
                   static_cast<std::uint64_t>(s.jobs));
        rep.record("scenario", sp, "passed",
                   static_cast<std::uint64_t>(s.passed));
        rep.record("scenario", sp, "sim_cycles", s.sim_cycles);
        rep.record("scenario", sp, "worst_deviation", s.worst_deviation);
      }
    }
  }

  table.print(std::cout);
  std::cout << "\nhardware threads: " << hw
            << "\nspeedup at 4 workers: " << format_double(speedup_at_4, 2)
            << "x\ndeterministic aggregates across worker counts: "
            << (deterministic ? "yes" : "NO — BUG") << "\n";

  rep.record("summary", {{"hardware_threads", std::to_string(hw)}},
             "speedup_at_4_workers", speedup_at_4);
  rep.record("summary", {{"hardware_threads", std::to_string(hw)}},
             "deterministic_across_worker_counts",
             std::uint64_t{deterministic ? 1u : 0u});

  return deterministic && all_pass ? 0 : 1;
}
