/// \file bench_baselines.cpp
/// Experiment C6 — paper §4: CAS-BUS vs the fixed TAMs it cites:
/// TestRail/TestShell [4] (static rails, "the TAM and the wrapper are
/// closely merged, leaving few freedom of decision") and direct
/// multiplexed access [5].

#include <iostream>

#include "bench_util.hpp"
#include "baseline/baselines.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;
  using namespace casbus::baseline;

  banner("C6", "CAS-BUS vs TestRail [4] vs direct mux access [5]");

  JsonReporter rep("baselines");
  const auto cores = reference_soc_cores();

  Table table({"N", "TAM", "test cycles", "vs CAS-BUS", "TAM area (GE)",
               "config episodes"},
              {Align::Right, Align::Left, Align::Right, Align::Right,
               Align::Right, Align::Right});

  for (const unsigned n : {2u, 4u, 8u, 12u, 16u}) {
    const TamEvaluation cas = evaluate_casbus(cores, n);
    const TamEvaluation rail =
        evaluate_testrail(cores, n, std::min(n, 4u));
    const TamEvaluation direct = evaluate_direct_mux(cores, n);

    const auto rel = [&](const TamEvaluation& e) {
      return format_double(static_cast<double>(e.test_cycles) /
                               static_cast<double>(cas.test_cycles),
                           2) +
             "x";
    };
    table.add_row({std::to_string(n), "CAS-BUS (this work)",
                   std::to_string(cas.test_cycles), "1.00x",
                   format_double(cas.area_ge, 0),
                   std::to_string(cas.sessions)});
    table.add_row({"", "TestRail [4]", std::to_string(rail.test_cycles),
                   rel(rail), format_double(rail.area_ge, 0),
                   std::to_string(rail.sessions)});
    table.add_row({"", "direct mux [5]",
                   std::to_string(direct.test_cycles), rel(direct),
                   format_double(direct.area_ge, 0),
                   std::to_string(direct.sessions)});
    table.add_separator();

    const auto emit = [&](const char* tam, const TamEvaluation& e) {
      const JsonReporter::Params pt = {{"n", std::to_string(n)},
                                       {"tam", tam}};
      rep.record("tam_eval", pt, "test_cycles", e.test_cycles);
      rep.record("tam_eval", pt, "area_ge", e.area_ge);
      rep.record("tam_eval", pt, "sessions",
                 static_cast<std::uint64_t>(e.sessions));
    };
    emit("casbus", cas);
    emit("testrail", rail);
    emit("direct_mux", direct);
  }
  table.print(std::cout);

  std::cout
      << "\nshape: direct access pays full serialization (no concurrency); "
         "TestRail gains rail-level parallelism but its design-time "
         "partition cannot adapt per session; CAS-BUS matches or beats "
         "both by reconfiguring, at a modest area premium over TestRail "
         "(the cost of the N/P switches) — the paper's §4 positioning.\n";
  return 0;
}
