/// \file bench_area_models.cpp
/// Experiment C5 — paper §3.3: "two other ways to generate CASes are now
/// under study. The first one consists in generating a highly optimized
/// gate level description. The second one ... based on the use of pass
/// transistors. ... first experiments have shown that they solve the CAS
/// area problem for large width test busses, even without restricting
/// heuristics."
///
/// Sweeps the three implementations across bus widths and P values.

#include <iostream>

#include "bench_util.hpp"
#include "core/cas_generator.hpp"
#include "netlist/area.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;

  banner("C5", "CAS implementation styles: generic vs optimized vs "
               "pass-transistor");

  JsonReporter rep("area_models");
  const netlist::AreaModel ge = netlist::AreaModel::typical();
  Table table({"N", "P", "m", "k", "generic GE", "optimized GE",
               "pass-tr GE", "winner"},
              {Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Right, Align::Right, Align::Left});

  for (const auto& [n, p] : std::vector<std::pair<unsigned, unsigned>>{
           {3, 1}, {4, 2}, {5, 2}, {6, 3}, {6, 5}, {8, 4}, {10, 5},
           {12, 6}, {16, 4}, {16, 8}}) {
    const tam::InstructionSet isa(n, p);

    double generic_ge = -1.0;
    if (isa.m() <= 4096) {  // one-hot decode explodes beyond this
      const auto gen = tam::generate_cas(
          n, p, {tam::CasImplementation::Generic, true});
      generic_ge = ge.total(gen.netlist);
    }
    const auto opt = tam::generate_cas(
        n, p, {tam::CasImplementation::OptimizedGateLevel, true});
    const double opt_ge = ge.total(opt.netlist);
    const double pt_ge = tam::pass_transistor_area(n, p).gate_equivalents;

    std::string winner = "pass-tr";
    double best = pt_ge;
    if (opt_ge < best) {
      best = opt_ge;
      winner = "optimized";
    }
    if (generic_ge >= 0 && generic_ge < best) winner = "generic";

    table.add_row(
        {std::to_string(n), std::to_string(p), std::to_string(isa.m()),
         std::to_string(isa.k()),
         generic_ge < 0 ? "(>4096 codes)" : format_double(generic_ge, 0),
         format_double(opt_ge, 0), format_double(pt_ge, 0), winner});

    const JsonReporter::Params pt = {{"n", std::to_string(n)},
                                     {"p", std::to_string(p)}};
    if (generic_ge >= 0) rep.record("implementation", pt, "generic_ge",
                                    generic_ge);
    rep.record("implementation", pt, "optimized_ge", opt_ge);
    rep.record("implementation", pt, "pass_transistor_ge", pt_ge);
  }
  table.print(std::cout);

  std::cout << "\nshape: the generic one-hot decode is competitive while m "
               "is small but grows ~m*k; the arithmetic decoder grows "
               "~N^2*P*k; the pass-transistor crossbar grows only ~N*P — "
               "it \"solves the CAS area problem for large width test "
               "busses\" exactly as §3.3 reports.\n";
  return 0;
}
