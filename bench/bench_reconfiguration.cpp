/// \file bench_reconfiguration.cpp
/// Experiment C3 — paper §4/§5: dynamic reconfiguration between sessions.
/// "Different TAM architectures can be addressed, in sequential order,
/// within the same test program, in order to optimize test performances.
/// This represents the main advantage of the proposed reconfigurable
/// CAS-BUS architecture."

#include <iostream>

#include "bench_util.hpp"
#include "sched/exact.hpp"
#include "sched/scheduler.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;

  banner("C3", "Static configuration vs dynamic reconfiguration");

  JsonReporter rep("reconfiguration");

  // --- analytic comparison on the reference SoC across widths --------------
  {
    Table table({"N", "static", "per-core", "greedy", "phased",
                 "best (incl. rails)", "gain vs static"},
                {Align::Right, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right, Align::Right});
    for (const unsigned n : {2u, 4u, 6u, 8u, 12u, 16u}) {
      sched::SessionScheduler s(reference_soc_cores(), n);
      const auto stat = s.single_session().total_cycles;
      const auto per_core = s.per_core_sessions().total_cycles;
      const auto greedy = s.greedy().total_cycles;
      const auto phased = s.phased().total_cycles;
      const auto best = s.best().total_cycles;
      table.add_row(
          {std::to_string(n), std::to_string(stat),
           std::to_string(per_core), std::to_string(greedy),
           std::to_string(phased), std::to_string(best),
           format_double(100.0 * (1.0 - static_cast<double>(best) /
                                            static_cast<double>(stat)),
                         1) +
               "%"});
      const JsonReporter::Params pt = {{"n", std::to_string(n)}};
      rep.record("strategy", pt, "static_cycles", stat);
      rep.record("strategy", pt, "per_core_cycles", per_core);
      rep.record("strategy", pt, "greedy_cycles", greedy);
      rep.record("strategy", pt, "phased_cycles", phased);
      rep.record("strategy", pt, "best_cycles", best);
    }
    table.print(std::cout);
    std::cout
        << "\nThe static program drags every core through the largest "
           "pattern budget; reconfiguring between sessions groups cores "
           "with similar budgets (greedy), rebalances freed wires as "
           "cores retire (phased), or re-partitions rail-style (best); "
           "each reconfiguration costs only the IR chain shift, counted "
           "above.\n";
  }

  // --- cycle-accurate two-session demonstration -----------------------------
  std::cout << "\nCycle-accurate reconfiguration (2-wire bus, one SoC, two "
               "sessions with different switch schemes):\n\n";
  {
    const auto sa = small_spec(601, 2, 14);
    const auto sb = small_spec(602, 1, 10);
    auto soc = soc::SocBuilder(2)
                   .add_scan_core("wide", sa)
                   .add_scan_core("narrow", sb)
                   .build();
    soc::SocTester tester(*soc);
    Rng rng(3);

    // Session 1: the wide core uses both wires (its 2 chains in parallel).
    soc::ScanSession s1;
    s1.targets.push_back(soc::ScanTarget{
        soc::CoreRef{0, std::nullopt}, {0, 1},
        tpg::PatternSet::random(14, 10, rng)});
    const auto r1 = tester.run_scan_session(s1);

    // Session 2 (bus reconfigured): the narrow core gets wire 1.
    soc::ScanSession s2;
    s2.targets.push_back(soc::ScanTarget{
        soc::CoreRef{1, std::nullopt}, {1},
        tpg::PatternSet::random(10, 4, rng)});
    const auto r2 = tester.run_scan_session(s2);

    Table table({"session", "configuration", "config cycles", "test cycles",
                 "verdict"},
                {Align::Left, Align::Left, Align::Right, Align::Right,
                 Align::Left});
    table.add_row({"1", "wide: chains -> wires {0,1}; narrow: BYPASS",
                   std::to_string(r1.configure_cycles),
                   std::to_string(r1.test_cycles),
                   r1.all_pass() ? "PASS" : "FAIL"});
    table.add_row({"2", "wide: BYPASS; narrow: chain -> wire {1}",
                   std::to_string(r2.configure_cycles),
                   std::to_string(r2.test_cycles),
                   r2.all_pass() ? "PASS" : "FAIL"});
    table.print(std::cout);
    rep.record("cycle_accurate", {{"session", "1"}}, "configure_cycles",
               r1.configure_cycles);
    rep.record("cycle_accurate", {{"session", "1"}}, "test_cycles",
               r1.test_cycles);
    rep.record("cycle_accurate", {{"session", "1"}}, "pass",
               std::uint64_t{r1.all_pass() ? 1u : 0u});
    rep.record("cycle_accurate", {{"session", "2"}}, "configure_cycles",
               r2.configure_cycles);
    rep.record("cycle_accurate", {{"session", "2"}}, "test_cycles",
               r2.test_cycles);
    rep.record("cycle_accurate", {{"session", "2"}}, "pass",
               std::uint64_t{r2.all_pass() ? 1u : 0u});
    std::cout << "\nSame silicon, two TAM shapes inside one test program — "
               "the switch schemes were reloaded through the wire-0 "
               "instruction chain between sessions.\n";
  }

  // --- heuristic quality vs the exhaustive optimum (small instances) -------
  std::cout << "\nHeuristic quality vs exhaustive partition search "
               "(random 5-7 core instances):\n\n";
  {
    Table table({"instance", "scan cores", "partitions", "optimal",
                 "greedy", "gap", "best()", "gap"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right, Align::Right, Align::Right});
    Rng rng(99);
    for (int t = 0; t < 5; ++t) {
      std::vector<sched::CoreTestSpec> cores;
      const std::size_t n = 5 + rng.below(3);
      for (std::size_t i = 0; i < n; ++i) {
        sched::CoreTestSpec c;
        c.name = "c" + std::to_string(i);
        const std::size_t chains = 1 + rng.below(3);
        for (std::size_t k = 0; k < chains; ++k)
          c.chains.push_back(15 + rng.below(120));
        c.patterns = 20 + rng.below(250);
        cores.push_back(std::move(c));
      }
      sched::SessionScheduler s(cores, 4);
      const sched::ExactResult exact = sched::exact_schedule(s);
      const auto greedy = s.greedy().total_cycles;
      const auto best = s.best().total_cycles;
      const auto gap = [&](std::uint64_t v) {
        return format_double(
                   100.0 * (static_cast<double>(v) /
                                static_cast<double>(
                                    exact.schedule.total_cycles) -
                            1.0),
                   1) +
               "%";
      };
      table.add_row({"rand" + std::to_string(t), std::to_string(n),
                     std::to_string(exact.partitions_tried),
                     std::to_string(exact.schedule.total_cycles),
                     std::to_string(greedy), gap(greedy),
                     std::to_string(best), gap(best)});
      const JsonReporter::Params pt = {{"instance",
                                        "rand" + std::to_string(t)}};
      rep.record("heuristic_quality", pt, "optimal_cycles",
                 exact.schedule.total_cycles);
      rep.record("heuristic_quality", pt, "greedy_cycles", greedy);
      rep.record("heuristic_quality", pt, "best_cycles", best);
    }
    table.print(std::cout);
    std::cout << "\n(best() may beat the partition optimum: rail emulation "
                 "and phased retirement are outside the partition space.)\n";
  }
  return 0;
}
