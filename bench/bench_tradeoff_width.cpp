/// \file bench_tradeoff_width.cpp
/// Experiment C1 — the §3.2 trade-off: wider bus = shorter test time but
/// larger CAS-BUS overhead; "a good trade-off ... allows to choose an
/// optimal width for the test bus."

#include <iostream>

#include "bench_util.hpp"
#include "sched/width_explorer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;

  banner("C1", "Test time vs CAS-BUS overhead across bus widths");

  JsonReporter rep("tradeoff_width");
  const auto cores = reference_soc_cores();
  const auto points = sched::explore_widths(cores, 1, 16);

  // Normalize both axes to their width-1 ... width-16 extremes and report
  // a combined cost (equal weights) to locate the knee.
  const double t0 = static_cast<double>(points.front().test_cycles);
  double a_max = 0;
  for (const auto& pt : points) a_max = std::max(a_max, pt.cas_area_ge);

  Table table({"N", "test cycles", "speedup", "CAS area (GE)",
               "pass-tr (GE)", "norm cost"},
              {Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Right});
  unsigned best_width = 1;
  double best_cost = 1e300;
  for (const auto& pt : points) {
    const double norm =
        static_cast<double>(pt.test_cycles) / t0 + pt.cas_area_ge / a_max;
    if (norm < best_cost) {
      best_cost = norm;
      best_width = pt.width;
    }
    table.add_row({std::to_string(pt.width),
                   std::to_string(pt.test_cycles),
                   format_double(t0 / static_cast<double>(pt.test_cycles),
                                 2) + "x",
                   format_double(pt.cas_area_ge, 0),
                   format_double(pt.pass_transistor_ge, 0),
                   format_double(norm, 3)});
    const JsonReporter::Params params = {{"n", std::to_string(pt.width)}};
    rep.record("width_point", params, "test_cycles", pt.test_cycles);
    rep.record("width_point", params, "cas_area_ge", pt.cas_area_ge);
    rep.record("width_point", params, "pass_transistor_ge",
               pt.pass_transistor_ge);
    rep.record("width_point", params, "normalized_cost", norm);
  }
  table.print(std::cout);
  rep.record("summary", {}, "knee_width", std::uint64_t{best_width});
  std::cout << "\nknee of the trade-off (equal-weight normalized cost): N = "
            << best_width
            << "\nshape: test time falls monotonically with N while CAS "
               "area rises — exactly the paper's trade-off argument; the "
               "pass-transistor implementation (§3.3) softens the area "
               "slope at large N.\n";
  return 0;
}
