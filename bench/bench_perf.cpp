/// \file bench_perf.cpp
/// Experiment P1 — engineering microbenchmarks (google-benchmark): the
/// throughputs that bound how large a SoC the cycle-accurate path can
/// handle, plus generator/optimizer costs.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <thread>

#include "bench_util.hpp"
#include "core/cas_generator.hpp"
#include "core/test_bus.hpp"
#include "netlist/faultsim.hpp"
#include "netlist/gatesim.hpp"
#include "netlist/opt.hpp"
#include "netlist/packed_gatesim.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulation.hpp"
#include "tpg/fault.hpp"
#include "tpg/lfsr.hpp"
#include "tpg/synthcore.hpp"
#include "util/rng.hpp"

namespace {

using namespace casbus;

/// Cycle-level kernel: a chain of CASes settling + ticking.
void BM_KernelCasChain(benchmark::State& state) {
  const auto n_cas = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim;
  tam::CasBusChain chain(sim, 8, "bus");
  for (std::size_t i = 0; i < n_cas; ++i)
    chain.add_cas("c" + std::to_string(i), 2);
  sim.reset();
  chain.head().set_all(Logic4::Zero);
  for (std::size_t i = 0; i < n_cas; ++i) chain.cas_i(i).set_uint(0);

  std::uint64_t x = 0;
  for (auto _ : state) {
    chain.head().set_uint(x++ & 0xFF);
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_cas));
}
BENCHMARK(BM_KernelCasChain)->Arg(4)->Arg(16)->Arg(64);

/// Gate-level simulation of a generated CAS.
void BM_GateSimCas(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const tam::GeneratedCas gen = tam::generate_cas(
      n, n / 2, {tam::CasImplementation::OptimizedGateLevel, true});
  netlist::GateSim sim(gen.netlist);
  sim.reset();
  Rng rng(1);
  for (auto _ : state) {
    for (unsigned w = 0; w < n; ++w)
      sim.set_input("e" + std::to_string(w), rng.coin());
    sim.eval();
    sim.tick();
    benchmark::DoNotOptimize(sim.output("s0"));
  }
  state.counters["cells"] =
      static_cast<double>(gen.netlist.cell_count());
}
BENCHMARK(BM_GateSimCas)->Arg(4)->Arg(8)->Arg(16);

/// The synthetic core shared by the scalar/packed simulation benchmarks,
/// so their patterns/sec counters are directly comparable. Cached per gate
/// count: google-benchmark re-invokes the benchmark body once per
/// measurement repetition, and regenerating the core every repetition
/// would dominate setup time (the bench driver is single-threaded, so the
/// static cache needs no locking).
const tpg::SyntheticCore& simcore_for(std::int64_t n_gates) {
  static std::map<std::int64_t, tpg::SyntheticCore> cache;
  auto it = cache.find(n_gates);
  if (it == cache.end()) {
    tpg::SyntheticCoreSpec spec;
    spec.n_inputs = 16;
    spec.n_outputs = 16;
    spec.n_flipflops = 64;
    spec.n_gates = static_cast<std::size_t>(n_gates);
    spec.n_chains = 4;
    it = cache.emplace(n_gates, tpg::make_synthetic_core(spec)).first;
  }
  return it->second;
}

/// Shared levelization of simcore_for(n_gates), computed once per gate
/// count instead of once per repetition.
const std::shared_ptr<const netlist::LevelizedNetlist>& simcore_lev(
    std::int64_t n_gates) {
  static std::map<std::int64_t,
                  std::shared_ptr<const netlist::LevelizedNetlist>>
      cache;
  auto it = cache.find(n_gates);
  if (it == cache.end())
    it = cache
             .emplace(n_gates,
                      netlist::levelize(simcore_for(n_gates).netlist))
             .first;
  return it->second;
}

/// Gate-level simulation of a synthetic core: one pattern per eval pass.
void BM_GateSimCore(benchmark::State& state) {
  const tpg::SyntheticCore& core = simcore_for(state.range(0));
  netlist::GateSim sim(core.netlist);
  sim.reset();
  Rng rng(2);
  for (auto _ : state) {
    for (std::size_t i = 0; i < core.spec.n_inputs; ++i)
      sim.set_input("pi" + std::to_string(i), rng.coin());
    sim.set_input("scan_en", false);
    for (std::size_t c = 0; c < core.spec.n_chains; ++c)
      sim.set_input("si" + std::to_string(c), false);
    sim.eval();
    sim.tick();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["patterns_per_sec"] =
      benchmark::Counter(1.0, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GateSimCore)->Arg(256)->Arg(1024)->Arg(4096);

/// 64-wide bit-parallel simulation of the same core: 64 patterns per pass.
/// patterns_per_sec here / patterns_per_sec of BM_GateSimCore at the same
/// gate count is the word-level speedup (acceptance target: >= 10x).
void BM_PackedGateSim(benchmark::State& state) {
  const tpg::SyntheticCore& core = simcore_for(state.range(0));
  netlist::PackedGateSim sim(simcore_lev(state.range(0)));
  sim.reset();
  Rng rng(2);
  for (auto _ : state) {
    for (std::size_t i = 0; i < core.spec.n_inputs; ++i) {
      // 64 random driven lanes per input: plane p1 = random, p0 = ~p1.
      const std::uint64_t ones = rng.next();
      sim.set_input_index(i, Logic64{~ones, ones});
    }
    sim.set_input("scan_en", Logic4::Zero);
    for (std::size_t c = 0; c < core.spec.n_chains; ++c)
      sim.set_input("si" + std::to_string(c), Logic4::Zero);
    sim.eval();
    sim.tick();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 64);
  state.counters["patterns_per_sec"] =
      benchmark::Counter(64.0, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PackedGateSim)->Arg(256)->Arg(1024)->Arg(4096);

/// Scan-shift workload shared by the sweep/event packed benchmarks:
/// scan_en held high, functional inputs quiet, and a repeat-fill scan
/// stream (the fill value flips only every 4 chain lengths, as in
/// repeat-fill ATPG compression). Per shift cycle only the old/new-value
/// boundary moves — one flip-flop per chain changes — so almost every
/// logic cone is quiescent. This is the workload the event-driven mode is
/// built for; the "activity" counter records the fraction of gate
/// evaluations it actually performed (1.0 for a full sweep).
void run_packed_shift(benchmark::State& state, netlist::EvalMode mode) {
  const tpg::SyntheticCore& core = simcore_for(state.range(0));
  netlist::PackedGateSim sim(simcore_lev(state.range(0)), mode);
  sim.reset();
  for (std::size_t i = 0; i < core.spec.n_inputs; ++i)
    sim.set_input_index(i, Logic64{~0ULL, 0});  // all lanes driven 0
  sim.set_input("scan_en", Logic4::One);
  const std::size_t refill = 4 * core.max_chain_length();
  std::size_t cycle = 0;
  bool fill = false;
  for (auto _ : state) {
    if (cycle++ % refill == 0) fill = !fill;
    for (std::size_t c = 0; c < core.spec.n_chains; ++c)
      sim.set_input("si" + std::to_string(c),
                    fill ? Logic4::One : Logic4::Zero);
    sim.eval();
    sim.tick();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 64);
  state.counters["patterns_per_sec"] =
      benchmark::Counter(64.0, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["activity"] = sim.stats().activity();
}

/// Full-sweep baseline on the scan-shift workload.
void BM_PackedGateSimSweepShift(benchmark::State& state) {
  run_packed_shift(state, netlist::EvalMode::FullSweep);
}
BENCHMARK(BM_PackedGateSimSweepShift)->Arg(1024)->Arg(4096);

/// Event-driven mode on the same workload; patterns_per_sec here /
/// BM_PackedGateSimSweepShift at the same gate count is the event-driven
/// speedup (acceptance target: >= 3x on this workload).
void BM_PackedGateSimEventShift(benchmark::State& state) {
  run_packed_shift(state, netlist::EvalMode::EventDriven);
}
BENCHMARK(BM_PackedGateSimEventShift)->Arg(1024)->Arg(4096);

/// The core graded by every fault-simulation benchmark, cached like
/// simcore_for so repetitions share one generation + levelization.
const tpg::SyntheticCore& faultcore_for(std::int64_t n_gates) {
  static std::map<std::int64_t, tpg::SyntheticCore> cache;
  auto it = cache.find(n_gates);
  if (it == cache.end()) {
    tpg::SyntheticCoreSpec spec;
    spec.n_inputs = 8;
    spec.n_outputs = 8;
    spec.n_flipflops = 16;
    spec.n_gates = static_cast<std::size_t>(n_gates);
    it = cache.emplace(n_gates, tpg::make_synthetic_core(spec)).first;
  }
  return it->second;
}

const std::shared_ptr<const netlist::LevelizedNetlist>& faultcore_lev(
    std::int64_t n_gates) {
  static std::map<std::int64_t,
                  std::shared_ptr<const netlist::LevelizedNetlist>>
      cache;
  auto it = cache.find(n_gates);
  if (it == cache.end())
    it = cache
             .emplace(n_gates,
                      netlist::levelize(faultcore_for(n_gates).netlist))
             .first;
  return it->second;
}

/// Serial stuck-at fault simulation (pattern x fault grid), one faulty
/// machine per eval pass — the pre-packed baseline.
void BM_FaultSim(benchmark::State& state) {
  const tpg::SyntheticCore& core = faultcore_for(state.range(0));
  tpg::FaultSimulator fsim(faultcore_lev(state.range(0)));
  const auto faults = tpg::enumerate_faults(core.netlist);
  Rng rng(3);
  const auto patterns =
      tpg::PatternSet::random(fsim.pattern_width(), 8, rng);
  for (auto _ : state) {
    const auto report = fsim.run_serial(patterns, faults);
    benchmark::DoNotOptimize(report.detected);
  }
  state.counters["faults"] = static_cast<double>(faults.size());
}
BENCHMARK(BM_FaultSim)->Arg(64)->Arg(256);

/// Bit-parallel stuck-at fault simulation: 64 faults per machine word,
/// same pattern x fault grid as BM_FaultSim.
void BM_FaultSim64(benchmark::State& state) {
  const tpg::SyntheticCore& core = faultcore_for(state.range(0));
  tpg::FaultSimulator fsim(faultcore_lev(state.range(0)));
  const auto faults = tpg::enumerate_faults(core.netlist);
  Rng rng(3);
  const auto patterns =
      tpg::PatternSet::random(fsim.pattern_width(), 8, rng);
  for (auto _ : state) {
    const auto report = fsim.run(patterns, faults);
    benchmark::DoNotOptimize(report.detected);
  }
  state.counters["faults"] = static_cast<double>(faults.size());
}
BENCHMARK(BM_FaultSim64)->Arg(64)->Arg(256);

/// BM_FaultSim64 with event-driven workers: grading identical, but each
/// faulty batch re-simulates only the fault cones. The "activity" counter
/// is the fraction of full-sweep gate evaluations actually performed.
void BM_FaultSim64Event(benchmark::State& state) {
  const tpg::SyntheticCore& core = faultcore_for(state.range(0));
  tpg::FaultSimulator fsim(faultcore_lev(state.range(0)),
                           netlist::EvalMode::EventDriven);
  const auto faults = tpg::enumerate_faults(core.netlist);
  Rng rng(3);
  const auto patterns =
      tpg::PatternSet::random(fsim.pattern_width(), 8, rng);
  for (auto _ : state) {
    const auto report = fsim.run(patterns, faults);
    benchmark::DoNotOptimize(report.detected);
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["activity"] = fsim.stats().activity();
}
BENCHMARK(BM_FaultSim64Event)->Arg(64)->Arg(256);

/// Threaded fault campaign on a campaign-sized grid (1024 gates, ~3k
/// faults, 32 patterns), sharded across range(0) worker threads
/// (run_fault_campaign). The detection maps are byte-identical at every
/// thread count; speedup at 4 threads over 1 is the campaign-level
/// scaling (acceptance target: >= 2.5x on >= 4 physical cores — see
/// docs/BENCHMARKS.md and tools/check_perf_gates.py).
void BM_FaultSimThreaded(benchmark::State& state) {
  const std::int64_t n_gates = 1024;
  const tpg::SyntheticCore& core = faultcore_for(n_gates);
  tpg::FaultSimulator fsim(faultcore_lev(n_gates));
  const auto faults = tpg::enumerate_faults(core.netlist);
  Rng rng(3);
  const auto patterns =
      tpg::PatternSet::random(fsim.pattern_width(), 32, rng);
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto report = fsim.run(patterns, faults, threads);
    benchmark::DoNotOptimize(report.detected);
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["threads"] = static_cast<double>(threads);
  // Scaling is only observable on multi-core hosts; the CI gate keys off
  // this counter and skips the speedup check on smaller machines.
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_FaultSimThreaded)->Arg(1)->Arg(2)->Arg(4);

/// CAS generation + optimization cost.
void BM_GenerateCas(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    const auto gen = tam::generate_cas(
        n, n / 2, {tam::CasImplementation::OptimizedGateLevel, true});
    benchmark::DoNotOptimize(gen.netlist.cell_count());
  }
}
BENCHMARK(BM_GenerateCas)->Arg(4)->Arg(8)->Arg(16);

/// Logic optimizer on a midsize random netlist.
void BM_Optimize(benchmark::State& state) {
  tpg::SyntheticCoreSpec spec;
  spec.n_gates = static_cast<std::size_t>(state.range(0));
  spec.n_flipflops = 32;
  const tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
  for (auto _ : state) {
    const auto opt = netlist::optimize(core.netlist);
    benchmark::DoNotOptimize(opt.cell_count());
  }
}
BENCHMARK(BM_Optimize)->Arg(512)->Arg(2048);

/// LFSR / MISR stepping.
void BM_LfsrMisr(benchmark::State& state) {
  tpg::Lfsr lfsr = tpg::Lfsr::standard(32, 0xDEAD);
  tpg::Misr misr(32);
  for (auto _ : state) {
    misr.feed_word(lfsr.step_word());
    benchmark::DoNotOptimize(misr.signature());
  }
}
BENCHMARK(BM_LfsrMisr);

/// Scheduler on the reference SoC.
void BM_Scheduler(benchmark::State& state) {
  std::vector<sched::CoreTestSpec> cores;
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    sched::CoreTestSpec c;
    c.name = "c" + std::to_string(i);
    for (int k = 0; k < 4; ++k) c.chains.push_back(20 + rng.below(200));
    c.patterns = 50 + rng.below(400);
    cores.push_back(std::move(c));
  }
  for (auto _ : state) {
    sched::SessionScheduler s(cores, 8);
    benchmark::DoNotOptimize(s.greedy().total_cycles);
  }
}
BENCHMARK(BM_Scheduler);

/// Console reporter that additionally forwards every run into the shared
/// JsonReporter, so bench_perf emits the same BENCH_<name>.json artifact
/// as the plain experiment harnesses.
class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonForwardingReporter(casbus::bench::JsonReporter& json)
      : json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      // Aggregate rows (mean/median/stddev/cv under --benchmark_repetitions)
      // have iterations == 0 and mixed units; record only measured runs.
      if (run.run_type != Run::RT_Iteration) continue;
      const casbus::bench::JsonReporter::Params params = {
          {"iterations", std::to_string(run.iterations)}};
      json_.record(run.benchmark_name(), params, "real_time_ns_per_iter",
                   run.GetAdjustedRealTime());
      json_.record(run.benchmark_name(), params, "cpu_time_ns_per_iter",
                   run.GetAdjustedCPUTime());
      for (const auto& [counter_name, counter] : run.counters)
        json_.record(run.benchmark_name(), params,
                     "counter_" + counter_name,
                     static_cast<double>(counter.value));
    }
  }

 private:
  casbus::bench::JsonReporter& json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  casbus::bench::JsonReporter json("perf");
  JsonForwardingReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
