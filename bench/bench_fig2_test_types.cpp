/// \file bench_fig2_test_types.cpp
/// Experiment F2 — the four test types supported by the CAS-BUS
/// (paper Figure 2), each executed cycle-accurately:
///   (a) scannable core, P = number of scan chains (N/P switching)
///   (b) BISTed core, P = 1
///   (c) core tested by an external LFSR source / MISR sink, P = 1
///   (d) hierarchical core with internal CASed cores, P = child bus width

#include <iostream>

#include "bench_util.hpp"
#include "sched/time_model.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "tpg/fault.hpp"
#include "tpg/lfsr.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;
  using namespace casbus::soc;

  banner("F2", "Figure 2: the four supported core test types on one bus");

  JsonReporter rep("fig2_test_types");

  Table table({"fig", "core type", "P", "bus use", "cycles", "predicted",
               "verdict"},
              {Align::Left, Align::Left, Align::Right, Align::Left,
               Align::Right, Align::Right, Align::Left});

  // One SoC hosting all four test types on an 8-wire bus.
  const auto scan_spec = small_spec(201, 4, 20, 80);
  const auto ext_spec = small_spec(203, 1, 12, 48);
  const auto child_a = small_spec(204, 1, 8, 32);
  const auto child_b = small_spec(205, 2, 10, 40);

  auto soc = SocBuilder(8)
                 .add_scan_core("scan", scan_spec)
                 .add_bist_core("bist", small_spec(202, 1, 12, 56), 192)
                 .add_external_core("ext", ext_spec)
                 .add_hierarchical_core("hier", 3,
                                        {{"ca", child_a}, {"cb", child_b}})
                 .build();
  SocTester tester(*soc);
  Rng rng(2);

  // (a) Scan: 4 chains of 5 on 4 wires.
  {
    const auto patterns =
        tpg::PatternSet::random(scan_spec.n_flipflops, 16, rng);
    ScanSession s;
    s.targets.push_back(
        ScanTarget{CoreRef{0, std::nullopt}, {0, 1, 2, 3}, patterns});
    const auto r = tester.run_scan_session(s);
    const auto predicted = sched::scan_cycles(5, 16);
    table.add_row({"2a", "scannable (4 chains)", "4", "wires 0-3",
                   std::to_string(r.test_cycles),
                   std::to_string(predicted),
                   r.all_pass() ? "PASS" : "FAIL"});
    rep.record("test_type", {{"fig", "2a"}, {"type", "scan"}}, "cycles",
               r.test_cycles);
    rep.record("test_type", {{"fig", "2a"}, {"type", "scan"}},
               "predicted_cycles", predicted);
    rep.record("test_type", {{"fig", "2a"}, {"type", "scan"}}, "pass",
               std::uint64_t{r.all_pass() ? 1u : 0u});

    // Stuck-at fault grade of the delivered patterns (bit-parallel, 64
    // faults per word): what the scan session actually bought us. The
    // shared-levelization constructor levelizes the reference core once
    // for both the scalar and the packed engine.
    const tpg::SyntheticCore ref = tpg::make_synthetic_core(scan_spec);
    tpg::FaultSimulator fsim(netlist::levelize(ref.netlist));
    fsim.pin_input("scan_en", false);
    for (std::size_t i = 0; i < scan_spec.n_inputs; ++i)
      fsim.pin_input("pi" + std::to_string(i), false);
    for (std::size_t c = 0; c < scan_spec.n_chains; ++c)
      fsim.pin_input("si" + std::to_string(c), false);
    const auto faults = tpg::enumerate_faults(ref.netlist);
    const auto grade = fsim.run(patterns, faults);
    std::cout << "scan pattern fault grade: " << grade.detected << "/"
              << grade.total_faults << " stuck-at faults ("
              << 100.0 * grade.coverage() << "% coverage, 64-wide packed "
              << "fault simulation)\n\n";
    rep.record("fault_grade", {{"fig", "2a"}, {"type", "scan"}},
               "total_faults", grade.total_faults);
    rep.record("fault_grade", {{"fig", "2a"}, {"type", "scan"}},
               "detected_faults", grade.detected);
    rep.record("fault_grade", {{"fig", "2a"}, {"type", "scan"}}, "coverage",
               grade.coverage());
  }

  // (b) BIST: start/verdict handshake on a single wire.
  {
    const auto r = tester.run_bist(1, 4, 192);
    table.add_row({"2b", "BISTed", "1", "wire 4",
                   std::to_string(r.test_cycles), std::to_string(192 + 2),
                   r.pass ? "PASS" : "FAIL"});
    rep.record("test_type", {{"fig", "2b"}, {"type", "bist"}}, "cycles",
               r.test_cycles);
    rep.record("test_type", {{"fig", "2b"}, {"type", "bist"}},
               "predicted_cycles", std::uint64_t{192 + 2});
    rep.record("test_type", {{"fig", "2b"}, {"type", "bist"}}, "pass",
               std::uint64_t{r.pass ? 1u : 0u});
  }

  // (c) External source/sink: stimuli from an off-chip LFSR, responses
  // compacted into an off-chip MISR; the chip sees one serial wire.
  {
    tpg::Lfsr source = tpg::Lfsr::standard(16, 0xBEEF);
    tpg::PatternSet patterns(ext_spec.n_flipflops);
    for (int p = 0; p < 12; ++p) {
      BitVector pat(ext_spec.n_flipflops);
      for (std::size_t b = 0; b < pat.size(); ++b)
        pat.set(b, source.step());
      patterns.add(std::move(pat));
    }
    ScanSession s;
    s.targets.push_back(ScanTarget{CoreRef{2, std::nullopt}, {7}, patterns});
    const auto r = tester.run_scan_session(s);

    // The off-chip MISR compacts the (golden) response stream; a second
    // MISR fed the observed stream would match exactly when the session
    // passes — demonstrate with the signature of the golden stream.
    tpg::Misr sink(16);
    for (std::size_t p = 0; p < patterns.size(); ++p)
      sink.feed_word(static_cast<std::uint32_t>(
          patterns.at(p).to_uint() & 0xFFFF));
    table.add_row({"2c", "external LFSR/MISR", "1", "wire 7",
                   std::to_string(r.test_cycles),
                   std::to_string(sched::scan_cycles(
                       ext_spec.n_flipflops, patterns.size())),
                   r.all_pass()
                       ? "PASS (MISR sig " +
                             std::to_string(sink.signature()) + ")"
                       : "FAIL"});
    rep.record("test_type", {{"fig", "2c"}, {"type", "external"}}, "cycles",
               r.test_cycles);
    rep.record("test_type", {{"fig", "2c"}, {"type", "external"}},
               "predicted_cycles",
               sched::scan_cycles(ext_spec.n_flipflops, patterns.size()));
    rep.record("test_type", {{"fig", "2c"}, {"type", "external"}}, "pass",
               std::uint64_t{r.all_pass() ? 1u : 0u});
  }

  // (d) Hierarchical: parent CAS P = 3 (child bus width); both children
  // tested in parallel through the tunnel.
  {
    const auto pa = tpg::PatternSet::random(child_a.n_flipflops, 8, rng);
    const auto pb = tpg::PatternSet::random(child_b.n_flipflops, 8, rng);
    ScanSession s;
    s.routes.push_back(HierarchyRoute{3, {0, 2, 6}});
    s.targets.push_back(ScanTarget{CoreRef{3, 0}, {0}, pa});
    s.targets.push_back(ScanTarget{CoreRef{3, 1}, {2, 6}, pb});
    const auto r = tester.run_scan_session(s);
    table.add_row({"2d", "hierarchical (2 children)", "3",
                   "wires 0,2,6 tunneled",
                   std::to_string(r.test_cycles),
                   std::to_string(sched::scan_cycles(8, 8)),
                   r.all_pass() ? "PASS" : "FAIL"});
    rep.record("test_type", {{"fig", "2d"}, {"type", "hierarchical"}},
               "cycles", r.test_cycles);
    rep.record("test_type", {{"fig", "2d"}, {"type", "hierarchical"}},
               "predicted_cycles", sched::scan_cycles(8, 8));
    rep.record("test_type", {{"fig", "2d"}, {"type", "hierarchical"}},
               "pass", std::uint64_t{r.all_pass() ? 1u : 0u});
  }

  table.print(std::cout);
  std::cout << "\nAll four Figure-2 access types executed on one "
               "reconfigurable bus; \"predicted\" is the analytic "
               "time-model value for the scan part.\n";
  return 0;
}
