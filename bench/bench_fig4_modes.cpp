/// \file bench_fig4_modes.cpp
/// Experiment F4 — the three CAS functional modes of paper Figure 4 and
/// the §3.3 claim that "the width of the CAS instruction register, even
/// when it is large, does not affect the test time, since the SoC test
/// architecture configuration will only occur once at the beginning of a
/// SoC testing session."

#include <iostream>

#include "bench_util.hpp"
#include "sched/time_model.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;
  using namespace casbus::soc;

  banner("F4", "Figure 4: CAS modes and the configure-once property");

  JsonReporter rep("fig4_modes");

  // Mode demonstration on a small SoC.
  {
    Table table({"mode", "what happens", "cycles"},
                {Align::Left, Align::Left, Align::Right});
    auto soc = SocBuilder(4)
                   .add_scan_core("dut", small_spec(401, 2, 12))
                   .build();
    SocTester tester(*soc);

    const std::uint64_t cfg = tester.configure_bus(
        {soc->bus().cas(0).isa().encode(tam::SwitchScheme({0, 2}, 4))});
    table.add_row({"CONFIGURATION (4a)",
                   "IR daisy-chained on wire 0, k=" +
                       std::to_string(soc->bus().cas(0).isa().k()) +
                       " bits shifted + update",
                   std::to_string(cfg)});

    // BYPASS: combinational pass-through — verify zero added latency.
    tester.configure_bus({tam::InstructionSet::kBypassCode});
    soc->bus().head().set_uint(0b1010);
    soc->simulation().settle();
    const bool transparent = soc->bus().tail().to_uint() == 0b1010;
    table.add_row({"BYPASS (4b)",
                   std::string("e_i -> s_i combinationally (") +
                       (transparent ? "verified" : "BROKEN") + ")",
                   "0"});
    rep.record("mode", {{"mode", "configuration"}}, "cycles", cfg);
    rep.record("mode", {{"mode", "bypass"}}, "transparent",
               std::uint64_t{transparent ? 1u : 0u});

    tester.configure_bus(
        {soc->bus().cas(0).isa().encode(tam::SwitchScheme({0, 2}, 4))});
    Rng rng(4);
    ScanSession s;
    s.targets.push_back(
        ScanTarget{CoreRef{0, std::nullopt}, {0, 2},
                   tpg::PatternSet::random(12, 8, rng)});
    const auto r = tester.run_scan_session(s);
    table.add_row({"TEST (4c)",
                   "P=2 wires switched to the core, 8 patterns",
                   std::to_string(r.test_cycles)});
    table.print(std::cout);
    rep.record("mode", {{"mode", "test"}}, "cycles", r.test_cycles);
  }

  // Configure-once: sweep CAS geometries (growing k); the per-session
  // configuration cost grows with k, the per-pattern test time does not.
  std::cout << "\nConfigure-once sweep (one scan core, 16 patterns, chain "
               "load held at 12 bits/wire):\n\n";
  Table sweep({"N", "P", "k (IR bits)", "config cycles", "test cycles",
               "test cycles / pattern"});
  for (const auto& [n, p] : std::vector<std::pair<unsigned, unsigned>>{
           {2, 1}, {4, 2}, {6, 3}, {8, 4}}) {
    const unsigned k = sched::cas_ir_bits(n, p);
    // Per-wire load fixed at 12 bits; V = 16 patterns.
    const std::uint64_t config = sched::configure_cycles(k);
    const std::uint64_t test = sched::scan_cycles(12, 16);
    sweep.add_row({std::to_string(n), std::to_string(p), std::to_string(k),
                   std::to_string(config), std::to_string(test),
                   format_double(static_cast<double>(test) / 16.0, 2)});
    const JsonReporter::Params pt = {{"n", std::to_string(n)},
                                     {"p", std::to_string(p)}};
    rep.record("configure_once", pt, "ir_bits", std::uint64_t{k});
    rep.record("configure_once", pt, "config_cycles", config);
    rep.record("configure_once", pt, "test_cycles", test);
  }
  sweep.print(std::cout);
  std::cout << "\nk grows from 2 to 11 bits across the sweep; the test "
               "phase is untouched — configuration is paid once per "
               "session (paper §3.3).\n";
  return 0;
}
