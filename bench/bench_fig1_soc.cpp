/// \file bench_fig1_soc.cpp
/// Experiment F1 — the paper's Figure 1 reference SoC, end to end.
///
/// Builds the figure's architecture — six wrapped cores (two scannable,
/// one BISTed, one externally tested, one embedded memory, one
/// hierarchical core embedding two sub-cores) on an 8-wire CAS-BUS — and
/// runs a complete test program through the chip pins: serial CAS
/// configuration, wrapper instruction loading, parallel scan sessions,
/// logic BIST and MARCH memory BIST, reporting per-core verdicts and cycle
/// budgets.

#include <iostream>

#include "bench_util.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "tpg/atpg.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;
  using namespace casbus::soc;

  banner("F1", "Figure 1 SoC: full test program over an 8-wire CAS-BUS");

  JsonReporter rep("fig1_soc");

  const auto spec1 = small_spec(101, 2, 16, 64);  // CORE1: scan, 2 chains
  const auto spec2 = small_spec(102, 4, 20, 80);  // CORE2: scan, 4 chains
  const auto spec4 = small_spec(104, 1, 12, 48);  // CORE4: external, P=1
  const auto spec6a = small_spec(106, 1, 8, 32);  // CORE6a (child)
  const auto spec6b = small_spec(107, 1, 10, 40); // CORE6b (child)

  SocBuilder builder(8);
  builder.add_scan_core("core1", spec1);
  builder.add_scan_core("core2", spec2);
  builder.add_bist_core("core3", small_spec(103, 1, 12, 56), 256);
  builder.add_external_core("core4", spec4);
  builder.add_memory_core("core5", 32, 8);
  builder.add_hierarchical_core("core6", 2,
                                {{"sub_a", spec6a}, {"sub_b", spec6b}});
  // The Figure-1 system bus: functional wires between the cores, testable
  // via wrapper EXTEST. The graph is kept acyclic — the synthetic cores'
  // clouds are combinational, so a cycle through two cores would be a
  // real combinational loop.
  builder.connect("core1", 0, "core2", 0);
  builder.connect("core1", 1, "core4", 1);
  builder.connect("core1", 2, "core2", 3);
  builder.connect("core4", 0, "core2", 2);
  auto soc_ptr = builder.build();
  Soc& soc = *soc_ptr;
  SocTester tester(soc);

  std::cout << "SoC: " << soc.core_count() << " top-level cores, "
            << soc.wrapper_ring().size() << " P1500 wrappers, bus width "
            << soc.bus().width() << ", configuration chain "
            << soc.bus().total_ir_bits() << " instruction bits\n\n";

  Table table({"core", "test type", "patterns/cycles", "cycles used",
               "verdict"},
              {Align::Left, Align::Left, Align::Right, Align::Right,
               Align::Left});

  // ATPG-quality patterns for the scan cores (functional inputs held low
  // by the wrapper update cells during intest).
  const auto make_patterns = [](const tpg::SyntheticCoreSpec& spec) {
    tpg::AtpgOptions opts;
    opts.seed = spec.seed;
    opts.target_coverage = 0.95;
    opts.max_patterns = 48;
    opts.pinned_inputs.emplace_back("scan_en", false);
    for (std::size_t i = 0; i < spec.n_inputs; ++i)
      opts.pinned_inputs.emplace_back("pi" + std::to_string(i), false);
    for (std::size_t c = 0; c < spec.n_chains; ++c)
      opts.pinned_inputs.emplace_back("si" + std::to_string(c), false);
    const auto core = tpg::make_synthetic_core(spec);
    return tpg::generate_patterns(core.netlist, opts);
  };

  // --- Session 1: CORE1 + CORE2 in parallel on 6 wires ---------------------
  {
    const auto atpg1 = make_patterns(spec1);
    const auto atpg2 = make_patterns(spec2);
    ScanSession s;
    s.targets.push_back(ScanTarget{CoreRef{0, std::nullopt}, {0, 1},
                                   atpg1.patterns});
    s.targets.push_back(ScanTarget{CoreRef{1, std::nullopt}, {2, 3, 4, 5},
                                   atpg2.patterns});
    const ScanSessionResult r = tester.run_scan_session(s);
    table.add_row({"core1", "scan (Fig 2a)",
                   std::to_string(atpg1.patterns.size()) + " pat (" +
                       format_double(100 * atpg1.coverage(), 1) + "% cov)",
                   std::to_string(r.total_cycles()),
                   r.targets[0].mismatches == 0 ? "PASS" : "FAIL"});
    table.add_row({"core2", "scan (Fig 2a)",
                   std::to_string(atpg2.patterns.size()) + " pat (" +
                       format_double(100 * atpg2.coverage(), 1) + "% cov)",
                   "(same session)",
                   r.targets[1].mismatches == 0 ? "PASS" : "FAIL"});
    rep.record("session", {{"session", "1"}, {"cores", "core1+core2"}},
               "cycles", r.total_cycles());
    rep.record("session", {{"session", "1"}, {"cores", "core1+core2"}},
               "pass",
               std::uint64_t{r.all_pass() ? 1u : 0u});
    rep.record("session", {{"session", "1"}, {"cores", "core1"}},
               "coverage", atpg1.coverage());
    rep.record("session", {{"session", "1"}, {"cores", "core2"}},
               "coverage", atpg2.coverage());
  }

  // --- Session 2: logic BIST of CORE3 --------------------------------------
  {
    const BistRunResult r = tester.run_bist(2, 0, 256);
    table.add_row({"core3", "BIST (Fig 2b)", "256 cycles",
                   std::to_string(r.configure_cycles + r.test_cycles),
                   r.pass ? "PASS" : "FAIL"});
    rep.record("session", {{"session", "2"}, {"cores", "core3"}}, "cycles",
               r.configure_cycles + r.test_cycles);
    rep.record("session", {{"session", "2"}, {"cores", "core3"}}, "pass",
               std::uint64_t{r.pass ? 1u : 0u});
  }

  // --- Session 3: CORE4 via external source/sink (P = 1) -------------------
  {
    // Off-chip tester: LFSR-derived patterns, P=1 serial access.
    tpg::Lfsr lfsr = tpg::Lfsr::standard(16, 0xACE1);
    tpg::PatternSet lfsr_patterns(spec4.n_flipflops);
    for (int p = 0; p < 24; ++p) {
      BitVector pat(spec4.n_flipflops);
      for (std::size_t b = 0; b < pat.size(); ++b) pat.set(b, lfsr.step());
      lfsr_patterns.add(std::move(pat));
    }
    ScanSession s;
    s.targets.push_back(
        ScanTarget{CoreRef{3, std::nullopt}, {6}, lfsr_patterns});
    const ScanSessionResult r = tester.run_scan_session(s);
    table.add_row({"core4", "external LFSR->MISR (Fig 2c)",
                   "24 pat on 1 wire", std::to_string(r.total_cycles()),
                   r.targets[0].mismatches == 0 ? "PASS" : "FAIL"});
    rep.record("session", {{"session", "3"}, {"cores", "core4"}}, "cycles",
               r.total_cycles());
    rep.record("session", {{"session", "3"}, {"cores", "core4"}}, "pass",
               std::uint64_t{r.all_pass() ? 1u : 0u});
  }

  // --- Session 4: MARCH C- on the embedded memory --------------------------
  {
    MemoryCore& ram = soc.cores()[4].as_memory();
    const BistRunResult r = tester.run_bist(4, 1, ram.mbist_cycles());
    table.add_row({"core5", "memory MARCH C-",
                   std::to_string(ram.mbist_cycles()) + " cycles",
                   std::to_string(r.configure_cycles + r.test_cycles),
                   r.pass ? "PASS" : "FAIL"});
    rep.record("session", {{"session", "4"}, {"cores", "core5"}}, "cycles",
               r.configure_cycles + r.test_cycles);
    rep.record("session", {{"session", "4"}, {"cores", "core5"}}, "pass",
               std::uint64_t{r.pass ? 1u : 0u});
  }

  // --- Session 5: hierarchical core, both children in parallel -------------
  {
    const auto atpg_a = make_patterns(spec6a);
    const auto atpg_b = make_patterns(spec6b);
    ScanSession s;
    s.routes.push_back(HierarchyRoute{5, {2, 5}});
    s.targets.push_back(ScanTarget{CoreRef{5, 0}, {2}, atpg_a.patterns});
    s.targets.push_back(ScanTarget{CoreRef{5, 1}, {5}, atpg_b.patterns});
    const ScanSessionResult r = tester.run_scan_session(s);
    table.add_row({"core6.sub_a", "hierarchical (Fig 2d)",
                   std::to_string(atpg_a.patterns.size()) + " pat",
                   std::to_string(r.total_cycles()),
                   r.targets[0].mismatches == 0 ? "PASS" : "FAIL"});
    table.add_row({"core6.sub_b", "hierarchical (Fig 2d)",
                   std::to_string(atpg_b.patterns.size()) + " pat",
                   "(same session)",
                   r.targets[1].mismatches == 0 ? "PASS" : "FAIL"});
    rep.record("session", {{"session", "5"}, {"cores", "core6"}}, "cycles",
               r.total_cycles());
    rep.record("session", {{"session", "5"}, {"cores", "core6"}}, "pass",
               std::uint64_t{r.all_pass() ? 1u : 0u});
  }

  // --- Session 6: system-bus interconnect EXTEST ----------------------------
  {
    const ExtestResult r = tester.run_extest(6, 2000);
    table.add_row({"system bus", "interconnect EXTEST",
                   std::to_string(r.connections) + " nets x " +
                       std::to_string(r.vectors) + " vec",
                   std::to_string(r.cycles),
                   r.all_pass() ? "PASS" : "FAIL"});
    rep.record("session", {{"session", "6"}, {"cores", "system_bus"}},
               "cycles", r.cycles);
    rep.record("session", {{"session", "6"}, {"cores", "system_bus"}},
               "pass", std::uint64_t{r.all_pass() ? 1u : 0u});
  }

  table.print(std::cout);
  std::cout << "\ntotal chip-level test program: " << tester.cycles()
            << " cycles\n";
  rep.record("summary", {{"bus_width", "8"}}, "total_cycles",
             tester.cycles());
  return 0;
}
