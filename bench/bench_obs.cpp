/// \file bench_obs.cpp
/// O1 — Cost of the telemetry layer: the observability contract is that
/// instrumentation is effectively free — near-zero when disabled (a null
/// pointer test per site) and within a few percent of the uninstrumented
/// floor when fully on. This harness measures both halves:
///
///   - registry micro-costs: ns per add()/observe() against a live
///     Registry, and ns per site when telemetry is disabled (the
///     null-`Registry*` path every floor instrument site compiles to),
///     plus the cold-path snapshot() cost,
///   - floor overhead: an identical repeated-spec job mix run through
///     FloorSession with telemetry fully off and fully on
///     (metrics + tracing), reporting both throughputs and the relative
///     overhead fraction that the CI gate caps at 5%
///     (tools/check_perf_gates.py --obs, bound in tools/bench_floors.json),
///   - health-engine costs: µs per TimeSeriesSampler tick over the full
///     floor metric catalogue (gated at obs.max_sampler_tick_us — the
///     budget one background tick may spend inside the registry) and µs
///     per HealthMonitor::evaluate over the whole rule catalogue (gated
///     at obs.max_health_eval_us).
///
/// Artifact: BENCH_obs.json (validated in CI by check_bench_json.py --obs).

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "floor/health.hpp"
#include "floor/job_factory.hpp"
#include "floor/session.hpp"
#include "floor/telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace casbus;
using bench::JsonReporter;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// ns per iteration of \p fn over \p iters repetitions.
template <typename Fn>
double ns_per_op(std::size_t iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn(i);
  return seconds_since(start) * 1e9 / static_cast<double>(iters);
}

/// Wall seconds for one full floor run over \p specs.
double floor_run_seconds(const floor::FloorConfig& config,
                         const std::vector<floor::JobSpec>& specs) {
  const auto start = std::chrono::steady_clock::now();
  floor::FloorSession session(config);
  for (const floor::JobSpec& spec : specs) {
    const bool accepted = session.submit(spec);
    CASBUS_ASSERT(accepted, "bench_obs: session closed early");
  }
  const floor::FloorReport report = session.drain();
  CASBUS_ASSERT(report.total.jobs == specs.size(),
                "bench_obs: job count mismatch");
  return seconds_since(start);
}

}  // namespace

int main() {
  bench::banner("O1", "Telemetry layer overhead");
  JsonReporter rep("obs");

  // --- Head 1: registry micro-costs --------------------------------------
  constexpr std::size_t kOps = 2'000'000;
  Table micro({"operation", "ns/op"}, {Align::Left, Align::Right});

  obs::Registry registry;
  const obs::MetricId counter = registry.counter("bench.counter");
  const obs::MetricId hist =
      registry.histogram("bench.hist", obs::Registry::latency_buckets_us());

  const double add_ns =
      ns_per_op(kOps, [&](std::size_t) { registry.add(counter); });
  const double observe_ns = ns_per_op(kOps, [&](std::size_t i) {
    registry.observe(hist, static_cast<double>(i % 1000));
  });

  // The disabled path as the floor compiles it: every instrument site
  // holds a Registry* that is null when telemetry is off. volatile keeps
  // the compiler from folding the loop away.
  obs::Registry* volatile disabled = nullptr;
  const double disabled_ns = ns_per_op(kOps, [&](std::size_t) {
    obs::Registry* r = disabled;
    if (r != nullptr) r->add(counter);
  });

  obs::TraceRecorder recorder(kOps);
  const double record_ns = ns_per_op(kOps / 4, [&](std::size_t i) {
    obs::TraceSpan span;
    span.name = "bench";
    span.ts_us = i;
    span.dur_us = 1;
    (void)recorder.record(span);
  });

  const auto snap_start = std::chrono::steady_clock::now();
  const obs::Snapshot snap = registry.snapshot();
  const double snapshot_us = seconds_since(snap_start) * 1e6;
  CASBUS_ASSERT(snap.counter("bench.counter") == kOps,
                "bench_obs: counter lost updates");

  micro.add_row({"Registry::add", format_double(add_ns, 2)});
  micro.add_row({"Registry::observe", format_double(observe_ns, 2)});
  micro.add_row({"disabled site (null check)",
                 format_double(disabled_ns, 2)});
  micro.add_row({"TraceRecorder::record", format_double(record_ns, 2)});
  micro.add_row({"Registry::snapshot (us)", format_double(snapshot_us, 1)});
  micro.print(std::cout);

  rep.record("registry", {{"op", "add"}}, "ns_per_op", add_ns);
  rep.record("registry", {{"op", "observe"}}, "ns_per_op", observe_ns);
  rep.record("registry", {{"op", "disabled"}}, "ns_per_op", disabled_ns);
  rep.record("registry", {{"op", "record"}}, "ns_per_op", record_ns);
  rep.record("registry", {{"op", "snapshot"}}, "us", snapshot_us);

  // --- Head 2: whole-floor overhead --------------------------------------
  // A repeated-spec mix (4 distinct recipes over 24 jobs) on 2 workers:
  // heavy enough that the jobs dominate, cache-diverse enough that all
  // instrument sites fire (lookups, both tiers, stage timers, spans).
  const floor::JobFactory factory(97);
  std::vector<floor::JobSpec> specs;
  constexpr std::size_t kJobs = 24;
  for (std::size_t i = 0; i < kJobs; ++i) {
    floor::JobSpec spec = factory.make_job(i % 4);
    spec.id = i;
    specs.push_back(spec);
  }

  floor::FloorConfig off;
  off.workers = 2;
  floor::FloorConfig on = off;
  on.metrics = true;
  on.trace_capacity = kJobs * (floor::kStageCount + 1);

  // Warm-up run (first-touch allocations, code paging), then measure the
  // best of 3 for each configuration — min is the right statistic for an
  // overhead bound because it strips scheduler noise, not telemetry cost.
  (void)floor_run_seconds(off, specs);
  double off_s = 1e100, on_s = 1e100;
  for (int rep_i = 0; rep_i < 3; ++rep_i) {
    off_s = std::min(off_s, floor_run_seconds(off, specs));
    on_s = std::min(on_s, floor_run_seconds(on, specs));
  }
  const double overhead = off_s > 0.0 ? (on_s - off_s) / off_s : 0.0;

  std::cout << "\nfloor overhead (" << kJobs << " jobs, 2 workers):\n"
            << "  telemetry off: " << format_double(off_s, 4) << " s ("
            << format_double(kJobs / off_s, 1) << " jobs/s)\n"
            << "  telemetry on:  " << format_double(on_s, 4) << " s ("
            << format_double(kJobs / on_s, 1) << " jobs/s)\n"
            << "  overhead: " << format_double(overhead * 100.0, 2)
            << "% (CI gate: <= 5%)\n";

  const JsonReporter::Params params = {
      {"jobs", std::to_string(kJobs)}, {"workers", "2"}};
  rep.record("floor_overhead", params, "off_seconds", off_s);
  rep.record("floor_overhead", params, "on_seconds", on_s);
  rep.record("floor_overhead", params, "jobs_per_sec_off", kJobs / off_s);
  rep.record("floor_overhead", params, "jobs_per_sec_on", kJobs / on_s);
  rep.record("floor_overhead", params, "overhead_frac", overhead);

  // --- Head 3: health-engine costs ----------------------------------------
  // One sampler tick = one Registry::snapshot() of the full floor
  // catalogue plus O(series) ring stores. Populate every metric first so
  // the histograms flatten through their real percentile path.
  obs::Registry floor_registry;
  const floor::FloorMetricIds ids =
      floor::register_floor_metrics(floor_registry);
  for (std::size_t i = 0; i < 4096; ++i) {
    floor_registry.add(ids.jobs_executed);
    floor_registry.add(ids.cache_lookups);
    for (const obs::MetricId stage : ids.stage_us)
      floor_registry.observe(stage, static_cast<double>(i % 2000));
  }
  obs::TimeSeriesSampler sampler(floor_registry, {1000, 240});
  constexpr std::size_t kTicks = 4096;
  const double tick_us =
      ns_per_op(kTicks, [&](std::size_t) { sampler.sample_now(); }) / 1e3;
  const std::size_t series = sampler.series_names().size();

  // One health evaluation over the whole catalogue, every rule armed so
  // each one pays its full comparison + message path.
  floor::HealthConfig hconfig;
  hconfig.enabled = true;
  hconfig.cache_hit_floor = 0.5;
  hconfig.watchdog_ms = 100;
  hconfig.stage_p99_ceiling_us.fill(1000.0);
  floor::HealthMonitor monitor(hconfig);
  floor::FloorStats stats;
  stats.metrics_enabled = true;
  stats.queue.capacity = 64;
  stats.queue.depth = 60;  // warn-level: the message branch runs too
  stats.worker_inflight_age_seconds = {0.0, 0.06, 0.0, 0.0};
  stats.worker_heartbeats = {1, 1, 1, 1};
  constexpr std::size_t kEvals = 65536;
  const double eval_us = ns_per_op(kEvals, [&](std::size_t i) {
    stats.completed = i;
    (void)monitor.evaluate(stats, static_cast<double>(i) * 0.25);
  }) / 1e3;

  std::cout << "\nhealth engine:\n"
            << "  sampler tick (" << series << " series): "
            << format_double(tick_us, 2)
            << " us (CI gate: <= 50 us)\n"
            << "  rule evaluation (7 rules): " << format_double(eval_us, 2)
            << " us (CI gate: <= 50 us)\n";

  rep.record("sampler", {{"series", std::to_string(series)}}, "us_per_tick",
             tick_us);
  rep.record("health", {{"rules", "7"}}, "us_per_eval", eval_us);

  std::cout << "\nwrote " << rep.path() << " (" << rep.size()
            << " records)\n";
  return 0;
}
