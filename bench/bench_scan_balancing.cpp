/// \file bench_scan_balancing.cpp
/// Experiment C2 — paper §4: "the test programmer can balance the length
/// of the scan chains within the test programs, in order to reduce the
/// test time."
///
/// Analytic sweep over random SoCs (naive round-robin vs LPT vs refined
/// LPT vs the makespan lower bound), then a cycle-accurate validation: the
/// same physical SoC is tested under a naive and a balanced assignment and
/// the simulator's cycle counts must match the model.

#include <iostream>

#include "bench_util.hpp"
#include "sched/balance.hpp"
#include "sched/time_model.hpp"
#include "soc/soc.hpp"
#include "soc/tester.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;

  banner("C2", "Scan-chain balancing across bus wires");

  JsonReporter rep("scan_balancing");

  // --- analytic sweep -------------------------------------------------------
  {
    Table table({"SoC", "wires", "chains", "naive max load", "LPT",
                 "refined", "lower bound", "time saved"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right, Align::Right, Align::Right});
    Rng rng(42);
    for (int soc_id = 0; soc_id < 6; ++soc_id) {
      std::vector<sched::ChainItem> items;
      const std::size_t n_chains = 6 + rng.below(14);
      for (std::size_t i = 0; i < n_chains; ++i)
        items.push_back(
            sched::ChainItem{i, 0, 10 + rng.below(190)});
      const auto wires = static_cast<unsigned>(2 + rng.below(7));

      const auto naive = sched::assign_round_robin(items, wires);
      const auto lpt = sched::assign_lpt(items, wires);
      const auto refined = sched::assign_lpt_refined(items, wires);
      const std::size_t lb = sched::balance_lower_bound(items, wires);

      const std::size_t patterns = 128;
      const auto t_naive = sched::scan_cycles(naive.max_load(), patterns);
      const auto t_ref = sched::scan_cycles(refined.max_load(), patterns);
      table.add_row(
          {"soc" + std::to_string(soc_id), std::to_string(wires),
           std::to_string(n_chains), std::to_string(naive.max_load()),
           std::to_string(lpt.max_load()),
           std::to_string(refined.max_load()), std::to_string(lb),
           format_double(100.0 * (1.0 - static_cast<double>(t_ref) /
                                            static_cast<double>(t_naive)),
                         1) +
               "%"});
      const JsonReporter::Params pt = {
          {"soc", "soc" + std::to_string(soc_id)},
          {"wires", std::to_string(wires)},
          {"chains", std::to_string(n_chains)}};
      rep.record("balancing", pt, "naive_max_load",
                 static_cast<std::uint64_t>(naive.max_load()));
      rep.record("balancing", pt, "lpt_max_load",
                 static_cast<std::uint64_t>(lpt.max_load()));
      rep.record("balancing", pt, "refined_max_load",
                 static_cast<std::uint64_t>(refined.max_load()));
      rep.record("balancing", pt, "lower_bound",
                 static_cast<std::uint64_t>(lb));
      rep.record("balancing", pt, "time_saved_frac",
                 1.0 - static_cast<double>(t_ref) /
                           static_cast<double>(t_naive));
    }
    table.print(std::cout);
  }

  // --- cycle-accurate validation --------------------------------------------
  std::cout << "\nCycle-accurate check (four single-chain cores on a "
               "2-wire bus):\n\n";
  {
    // Chains: a=12, b=10, c=9, d=8 flip-flops. A naive program packs the
    // first two cores onto wire 0 (22 bits against 17); the balanced one
    // pairs long with short (20/19).
    const auto sa = small_spec(501, 1, 12);
    const auto sb = small_spec(502, 1, 10);
    const auto sc = small_spec(503, 1, 9);
    const auto sd = small_spec(504, 1, 8);
    Rng rng(7);
    const auto pa = tpg::PatternSet::random(12, 6, rng);
    const auto pb = tpg::PatternSet::random(10, 6, rng);
    const auto pc = tpg::PatternSet::random(9, 6, rng);
    const auto pd = tpg::PatternSet::random(8, 6, rng);

    Table table({"assignment", "wire loads", "predicted cycles",
                 "measured cycles", "verdict"},
                {Align::Left, Align::Left, Align::Right, Align::Right,
                 Align::Left});

    for (const bool balanced : {false, true}) {
      auto soc = soc::SocBuilder(2)
                     .add_scan_core("a", sa)
                     .add_scan_core("b", sb)
                     .add_scan_core("c", sc)
                     .add_scan_core("d", sd)
                     .build();
      soc::SocTester tester(*soc);
      soc::ScanSession session;
      const std::vector<unsigned> wa = balanced
                                           ? std::vector<unsigned>{0, 1, 1, 0}
                                           : std::vector<unsigned>{0, 0, 1, 1};
      session.targets.push_back(
          soc::ScanTarget{soc::CoreRef{0, std::nullopt}, {wa[0]}, pa});
      session.targets.push_back(
          soc::ScanTarget{soc::CoreRef{1, std::nullopt}, {wa[1]}, pb});
      session.targets.push_back(
          soc::ScanTarget{soc::CoreRef{2, std::nullopt}, {wa[2]}, pc});
      session.targets.push_back(
          soc::ScanTarget{soc::CoreRef{3, std::nullopt}, {wa[3]}, pd});
      const auto r = tester.run_scan_session(session);
      const std::size_t max_load = balanced ? 20 : 22;
      const auto predicted = sched::scan_cycles(max_load, 6);
      table.add_row({balanced ? "balanced (a+d | b+c)" : "naive (a+b | c+d)",
                     balanced ? "20 / 19" : "22 / 17",
                     std::to_string(predicted),
                     std::to_string(r.test_cycles),
                     (r.all_pass() && r.test_cycles == predicted)
                         ? "PASS, model exact"
                         : "CHECK"});
      const JsonReporter::Params pt = {
          {"assignment", balanced ? "balanced" : "naive"}};
      rep.record("cycle_accurate", pt, "predicted_cycles", predicted);
      rep.record("cycle_accurate", pt, "measured_cycles", r.test_cycles);
      rep.record("cycle_accurate", pt, "model_exact",
                 std::uint64_t{
                     r.all_pass() && r.test_cycles == predicted ? 1u : 0u});
    }
    table.print(std::cout);
  }

  std::cout << "\nCores daisy-chain along a shared wire in bus order; the "
               "balanced program pairs long chains with short ones and the "
               "measured cycle counts confirm the §4 claim exactly.\n";
  return 0;
}
