/// \file bench_verify.cpp
/// V1 — Cost of the static verification layer: the Verify stage sits in
/// front of every cycle-accurate Simulate in the floor pipeline, so its
/// price has to stay in the microsecond range or the "reject bad designs
/// cheaply" argument inverts. This harness measures both linter heads:
///
///   - netlist lint over synthetic scan cores and composed CAS-BUS / full
///     TAM netlists of growing size (metric: microseconds per gate and per
///     design — the per-gate figure should be flat, the sweep is the
///     linearity check),
///   - schedule lint over generated SoC populations of 10 / 100 / 1000
///     cores across strategies (metric: microseconds per session and per
///     design).
///
/// Artifact: BENCH_verify.json (validated in CI by check_bench_json.py,
/// like every other bench artifact).

#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/casbus_netlist.hpp"
#include "core/complete_tam.hpp"
#include "explore/soc_generator.hpp"
#include "sched/scheduler.hpp"
#include "tpg/synthcore.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "verify/netlist_lint.hpp"
#include "verify/schedule_lint.hpp"

namespace {

using namespace casbus;
using bench::JsonReporter;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Repeats \p fn until ~20ms have elapsed (at least 3 runs) and returns
/// mean seconds per run — enough repetition to de-noise microsecond-scale
/// lint passes without a heavyweight stats harness.
template <typename Fn>
double time_per_run(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  std::size_t runs = 0;
  double elapsed = 0.0;
  do {
    fn();
    ++runs;
    elapsed = seconds_since(start);
  } while (elapsed < 0.02 || runs < 3);
  return elapsed / static_cast<double>(runs);
}

}  // namespace

int main() {
  bench::banner("V1", "Static verification layer cost");
  JsonReporter rep("verify");

  // --- Head 1: netlist lint, size sweep ---------------------------------
  Table nl_table({"design", "cells", "diags", "lint us", "us/gate"},
                 {Align::Left, Align::Right, Align::Right, Align::Right,
                  Align::Right});

  struct NetlistCase {
    std::string name;
    netlist::Netlist netlist;
    verify::NetlistLintConfig config;
  };
  std::vector<NetlistCase> cases;

  for (const std::size_t ffs : {32u, 128u, 512u}) {
    tpg::SyntheticCoreSpec spec;
    spec.n_inputs = 8;
    spec.n_outputs = 8;
    spec.n_flipflops = ffs;
    spec.n_gates = 4 * ffs;
    spec.n_chains = 4;
    spec.seed = 7;
    tpg::SyntheticCore core = tpg::make_synthetic_core(spec);
    verify::NetlistLintConfig config;
    for (std::size_t c = 0; c < core.chains.size(); ++c)
      config.scan_chains.push_back(verify::ScanChainSpec{
          "si" + std::to_string(c), "so" + std::to_string(c),
          core.chains[c].size()});
    cases.push_back(NetlistCase{"core_ff" + std::to_string(ffs),
                                std::move(core.netlist),
                                std::move(config)});
  }
  for (const unsigned width : {4u, 8u}) {
    tam::CasBusNetlistSpec spec;
    spec.width = width;
    spec.ports_per_cas.assign(width / 2, 2);
    spec.run_optimizer = true;
    cases.push_back(NetlistCase{"casbus_n" + std::to_string(width),
                                tam::generate_casbus_netlist(spec).netlist,
                                {}});
  }
  {
    tam::CompleteTamSpec spec;
    spec.width = 6;
    for (const unsigned chains : {2u, 3u, 1u}) {
      p1500::WrapperSpec w;
      w.n_func_in = 4;
      w.n_func_out = 4;
      w.n_chains = chains;
      spec.wrappers.push_back(w);
    }
    cases.push_back(NetlistCase{
        "complete_tam_n6", generate_complete_tam(spec).netlist, {}});
  }

  for (const NetlistCase& c : cases) {
    const verify::LintReport report =
        verify::lint_netlist(c.netlist, c.config);
    const double secs = time_per_run(
        [&] { (void)verify::lint_netlist(c.netlist, c.config); });
    const double us = secs * 1e6;
    const double us_per_gate =
        us / static_cast<double>(c.netlist.cell_count());
    nl_table.add_row({c.name, std::to_string(c.netlist.cell_count()),
                  std::to_string(report.diagnostics.size()),
                  format_double(us, 1), format_double(us_per_gate, 4)});
    const JsonReporter::Params params = {
        {"design", c.name},
        {"cells", std::to_string(c.netlist.cell_count())}};
    rep.record("netlist_lint", params, "lint_us", us);
    rep.record("netlist_lint", params, "us_per_gate", us_per_gate);
    rep.record("netlist_lint", params, "diagnostics",
               static_cast<std::uint64_t>(report.diagnostics.size()));
  }
  nl_table.print(std::cout);

  // --- Head 2: schedule lint, population sweep ---------------------------
  std::cout << "\n";
  Table sc_table(
      {"cores", "strategy", "sessions", "lint us", "us/session"},
      {Align::Right, Align::Left, Align::Right, Align::Right, Align::Right});

  const explore::SocGenerator generator(2000);
  for (const std::size_t n :
       {std::size_t{10}, std::size_t{100}, std::size_t{1000}}) {
    const explore::GeneratedSoc soc =
        generator.generate(n, explore::SocProfile::Mixed);
    for (const sched::Strategy strategy :
         {sched::Strategy::Greedy, sched::Strategy::PerCore}) {
      const sched::Schedule schedule = sched::schedule_with(
          soc.cores, soc.suggested_width, strategy);
      const verify::LintReport report =
          verify::lint_schedule(schedule, soc.cores, soc.suggested_width);
      if (!report.clean())
        std::cerr << "unexpected diagnostics on " << soc.name << ":\n"
                  << report.to_string();
      const double secs = time_per_run([&] {
        (void)verify::lint_schedule(schedule, soc.cores,
                                    soc.suggested_width);
      });
      const double us = secs * 1e6;
      const double us_per_session =
          us / static_cast<double>(schedule.sessions.size());
      sc_table.add_row({std::to_string(n), sched::strategy_name(strategy),
                    std::to_string(schedule.sessions.size()),
                    format_double(us, 1), format_double(us_per_session, 2)});
      const JsonReporter::Params params = {
          {"cores", std::to_string(n)},
          {"strategy", sched::strategy_name(strategy)},
          {"sessions", std::to_string(schedule.sessions.size())}};
      rep.record("schedule_lint", params, "lint_us", us);
      rep.record("schedule_lint", params, "us_per_session",
                 us_per_session);
      rep.record("schedule_lint", params, "diagnostics",
                 static_cast<std::uint64_t>(report.diagnostics.size()));
    }
  }
  sc_table.print(std::cout);

  std::cout << "\nwrote " << rep.path() << " (" << rep.size()
            << " records)\n";
  return 0;
}
