/// \file bench_ablation_heuristic.cpp
/// Ablation A1 — the paper's routing heuristic (§3.2): "When an input e_i
/// is switched to an output o_j, the corresponding i_j CAS input is
/// switched to the s_i output. The use of this heuristic obviously limits
/// the width of the test bus path ... [and] the total number m of
/// combinations."
///
/// Without the heuristic the forward (e→o) and return (i→s) assignments
/// are independent injective maps: m_free = A(N,P)^2 + 2 instead of
/// A(N,P) + 2. This bench quantifies what the heuristic buys: instruction
/// register width, configuration-stream length, and decoder area (the
/// generic decode grows ~m·k product terms).

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/arrangement.hpp"
#include "core/instruction.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

unsigned ceil_log2_u64(double m) {
  unsigned k = 0;
  double cap = 1;
  while (cap < m) {
    cap *= 2;
    ++k;
  }
  return k;
}

}  // namespace

int main() {
  using namespace casbus;
  using namespace casbus::bench;

  banner("A1", "Ablation: the e_i->o_j => i_j->s_i routing heuristic");

  JsonReporter rep("ablation_heuristic");

  Table table({"N", "P", "m (heuristic)", "k", "m (free routing)", "k free",
               "IR bits saved", "decoder size ratio"},
              {Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Right, Align::Right, Align::Right});

  for (const auto& [n, p] : std::vector<std::pair<unsigned, unsigned>>{
           {3, 1}, {4, 2}, {5, 2}, {5, 3}, {6, 3}, {6, 5}, {8, 4},
           {10, 5}}) {
    const tam::InstructionSet isa(n, p);
    const double a = static_cast<double>(tam::arrangement_count(n, p));
    const double m_free = a * a + 2.0;
    const unsigned k_free = ceil_log2_u64(m_free);
    // Generic decode cost ~ m * k product-term literals.
    const double decode_ratio =
        (m_free * k_free) /
        (static_cast<double>(isa.m()) * static_cast<double>(isa.k()));
    table.add_row({std::to_string(n), std::to_string(p),
                   std::to_string(isa.m()), std::to_string(isa.k()),
                   format_double(m_free, 0), std::to_string(k_free),
                   std::to_string(k_free - isa.k()),
                   format_double(decode_ratio, 1) + "x"});

    const JsonReporter::Params pt = {{"n", std::to_string(n)},
                                     {"p", std::to_string(p)}};
    rep.record("heuristic", pt, "m", isa.m());
    rep.record("heuristic", pt, "k", std::uint64_t{isa.k()});
    rep.record("heuristic", pt, "m_free", m_free);
    rep.record("heuristic", pt, "k_free", std::uint64_t{k_free});
    rep.record("heuristic", pt, "ir_bits_saved",
               std::uint64_t{k_free - isa.k()});
    rep.record("heuristic", pt, "decoder_size_ratio", decode_ratio);
  }
  table.print(std::cout);

  std::cout
      << "\nWithout the heuristic the instruction register roughly doubles"
         " (k_free ~ 2k) and a generic decoder grows by the ratio shown —"
         " e.g. " << format_double((1680.0 * 1680.0 + 2) * 22 /
                                       (1682.0 * 11),
                                   0)
      << "x at N=8/P=4. The price is flexibility nobody needs: the return"
         " path always has a wire available (the one that delivered the"
         " stimulus), so tying it to the forward route loses no useful"
         " configuration — the paper's heuristic is a pure win.\n";

  // Second ablation: what the +2 special codes cost. Without BYPASS and
  // CONFIGURATION codes the CAS could not be chained or skipped — show the
  // k impact is nil almost everywhere (the +2 rarely crosses a power of 2).
  std::cout << "\nSpecial codes (+2 for BYPASS/CONFIGURATION):\n\n";
  Table t2({"N", "P", "A(N,P)", "k without +2", "k with +2", "cost"},
           {Align::Right, Align::Right, Align::Right, Align::Right,
            Align::Right, Align::Right});
  for (const auto& [n, p] : std::vector<std::pair<unsigned, unsigned>>{
           {3, 1}, {4, 2}, {4, 3}, {5, 3}, {6, 2}, {6, 5}, {8, 4}}) {
    const tam::InstructionSet isa(n, p);
    const std::uint64_t a = tam::arrangement_count(n, p);
    const unsigned k_no = ceil_log2_u64(static_cast<double>(a));
    t2.add_row({std::to_string(n), std::to_string(p), std::to_string(a),
                std::to_string(k_no), std::to_string(isa.k()),
                std::to_string(isa.k() - k_no) + " bit(s)"});
    rep.record("special_codes",
               {{"n", std::to_string(n)}, {"p", std::to_string(p)}},
               "k_cost_bits", std::uint64_t{isa.k() - k_no});
  }
  t2.print(std::cout);
  return 0;
}
