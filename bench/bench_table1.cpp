/// \file bench_table1.cpp
/// Experiment T1 — reproduction of the paper's Table 1 (CAS synthesis
/// results).
///
/// Columns m and k are combinatorial facts and must match the paper
/// exactly. Gate counts substitute our gate-equivalent model for Synopsys
/// synthesis on an unnamed library (DESIGN.md §6): we report the generated
/// cell count raw and optimized, total gate-equivalents, and GE excluding
/// the instruction-register flip-flops, next to the paper's figure, so the
/// growth trend across (N, P) can be compared directly.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/cas_generator.hpp"
#include "core/instruction.hpp"
#include "netlist/area.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace casbus;
  using namespace casbus::bench;

  banner("T1", "Table 1: CAS synthesis results (paper vs this library)");

  JsonReporter rep("table1");
  const netlist::AreaModel ge = netlist::AreaModel::typical();
  Table table({"N", "P", "m", "k", "m ok", "k ok", "cells raw",
               "cells opt", "GE opt", "GE w/o IR", "paper gates"});

  bool all_mk_match = true;
  for (const Table1Row& row : table1_rows()) {
    const tam::InstructionSet isa(row.n, row.p);
    const bool m_ok = isa.m() == row.m;
    const bool k_ok = isa.k() == row.k;
    all_mk_match = all_mk_match && m_ok && k_ok;

    const tam::GeneratedCas raw = tam::generate_cas(
        row.n, row.p, {tam::CasImplementation::Generic, false});
    const tam::GeneratedCas opt = tam::generate_cas(
        row.n, row.p, {tam::CasImplementation::Generic, true});

    const double ge_total = ge.total(opt.netlist);
    // The paper's "# of gates" for e.g. N=3/P=1 (16 gates) cannot include
    // the 2k instruction-register flip-flops, so we also report the
    // combinational switch+decode logic alone.
    double ge_ff = 0.0;
    for (const auto& cell : opt.netlist.cells())
      if (netlist::is_sequential(cell.kind))
        ge_ff += ge.cost(cell.kind);

    table.add_row({std::to_string(row.n), std::to_string(row.p),
                   std::to_string(isa.m()), std::to_string(isa.k()),
                   m_ok ? "yes" : "NO", k_ok ? "yes" : "NO",
                   std::to_string(raw.netlist.cell_count()),
                   std::to_string(opt.netlist.cell_count()),
                   format_double(ge_total, 0),
                   format_double(ge_total - ge_ff, 0),
                   std::to_string(row.paper_gates)});

    const JsonReporter::Params pt = {{"n", std::to_string(row.n)},
                                     {"p", std::to_string(row.p)}};
    rep.record("table1_row", pt, "m", isa.m());
    rep.record("table1_row", pt, "k", std::uint64_t{isa.k()});
    rep.record("table1_row", pt, "mk_match",
               std::uint64_t{m_ok && k_ok ? 1u : 0u});
    rep.record("table1_row", pt, "cells_raw",
               std::uint64_t{raw.netlist.cell_count()});
    rep.record("table1_row", pt, "cells_opt",
               std::uint64_t{opt.netlist.cell_count()});
    rep.record("table1_row", pt, "ge_opt", ge_total);
    rep.record("table1_row", pt, "ge_opt_excl_ir", ge_total - ge_ff);
    rep.record("table1_row", pt, "paper_gates",
               std::uint64_t{row.paper_gates});
  }
  table.print(std::cout);

  std::cout << "\nm = A(N,P) + 2 and k = ceil(log2 m) match the paper: "
            << (all_mk_match ? "ALL 12 ROWS" : "MISMATCH FOUND") << "\n";

  // Trend check: Pearson correlation between log(paper gates) and
  // log(our optimized GE) across the 12 rows.
  {
    std::vector<double> xs, ys;
    for (const Table1Row& row : table1_rows()) {
      const tam::GeneratedCas opt = tam::generate_cas(
          row.n, row.p, {tam::CasImplementation::Generic, true});
      xs.push_back(std::log(static_cast<double>(row.paper_gates)));
      ys.push_back(std::log(ge.total(opt.netlist)));
    }
    double mx = 0, my = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      mx += xs[i];
      my += ys[i];
    }
    mx /= static_cast<double>(xs.size());
    my /= static_cast<double>(ys.size());
    double sxy = 0, sxx = 0, syy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sxy += (xs[i] - mx) * (ys[i] - my);
      sxx += (xs[i] - mx) * (xs[i] - mx);
      syy += (ys[i] - my) * (ys[i] - my);
    }
    const double corr = sxy / std::sqrt(sxx * syy);
    std::cout << "log-log correlation(paper gates, our GE) = "
              << format_double(corr, 3)
              << "  (1.0 = identical growth shape)\n";
    rep.record("summary", {}, "all_mk_match",
               std::uint64_t{all_mk_match ? 1u : 0u});
    rep.record("summary", {}, "loglog_correlation", corr);
  }
  return 0;
}
