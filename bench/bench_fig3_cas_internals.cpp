/// \file bench_fig3_cas_internals.cpp
/// Experiment F3 — the CAS internal architecture of paper Figure 3.
///
/// For a sweep of geometries, prints the component inventory of the
/// generated switch (instruction register, update stage, decode, N/P
/// switch, tri-states), its combinational depth, and re-verifies that the
/// generated hardware is cycle-equivalent to the behavioral model.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/cas_behavior.hpp"
#include "core/cas_generator.hpp"
#include "core/test_bus.hpp"
#include "netlist/emit.hpp"
#include "netlist/gatesim.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace casbus;

/// Runs random configuration + data sessions on both models; returns
/// mismatching output observations.
std::size_t equivalence_mismatches(unsigned n, unsigned p,
                                   const tam::GeneratedCas& gen,
                                   int rounds) {
  netlist::GateSim gate(gen.netlist);
  gate.reset();

  sim::Simulation simctx;
  tam::CasBusChain chain(simctx, n, "bus");
  tam::CasBehavior& cas = chain.add_cas("dut", p);
  simctx.reset();

  Rng rng(n * 97 + p);
  std::size_t mismatches = 0;

  const auto drive = [&](std::uint64_t e, std::uint64_t i, bool config,
                         bool update) {
    chain.head().set_uint(e);
    chain.cas_i(0).set_uint(i);
    chain.config_wire().set(config);
    chain.update_wire().set(update);
    for (unsigned w = 0; w < n; ++w)
      gate.set_input("e" + std::to_string(w), ((e >> w) & 1ULL) != 0);
    for (unsigned j = 0; j < p; ++j)
      gate.set_input("i" + std::to_string(j), ((i >> j) & 1ULL) != 0);
    gate.set_input("config", config);
    gate.set_input("update", update);
    simctx.settle();
    gate.eval();
    for (unsigned w = 0; w < n; ++w)
      if (gate.output("s" + std::to_string(w)) != chain.tail()[w].get())
        ++mismatches;
    for (unsigned j = 0; j < p; ++j)
      if (gate.output("o" + std::to_string(j)) !=
          chain.cas_o(0)[j].get())
        ++mismatches;
    simctx.step();
    gate.tick();
  };

  for (int round = 0; round < rounds; ++round) {
    const std::uint64_t code =
        tam::InstructionSet::kFirstTestCode + rng.below(cas.isa().m() - 2);
    for (unsigned b = cas.isa().k(); b-- > 0;)
      drive(((code >> b) & 1ULL) != 0 ? 1 : 0, 0, true, false);
    drive(0, 0, true, true);
    for (int c = 0; c < 4; ++c)
      drive(rng.below(1ULL << n), rng.below(1ULL << p), false, false);
  }
  return mismatches;
}

}  // namespace

int main() {
  using namespace casbus::bench;
  banner("F3", "Figure 3: generated CAS internals and equivalence");

  JsonReporter rep("fig3_cas_internals");

  Table table({"N", "P", "k", "IR FFs", "decode/switch cells", "tri-states",
               "depth", "VHDL lines", "equiv"},
              {Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Left});

  for (const auto& [n, p] : std::vector<std::pair<unsigned, unsigned>>{
           {3, 1}, {4, 2}, {5, 3}, {6, 2}, {6, 3}, {8, 4}}) {
    const tam::GeneratedCas gen = tam::generate_cas(
        n, p, {tam::CasImplementation::Generic, false});
    const auto hist = gen.netlist.kind_histogram();
    const std::size_t ffs = gen.netlist.dff_count();
    const std::size_t tri =
        hist[static_cast<std::size_t>(netlist::CellKind::Tribuf)];
    const std::size_t comb = gen.netlist.cell_count() - ffs - tri;

    netlist::GateSim probe(gen.netlist);
    const std::string vhdl = netlist::emit_vhdl(gen.netlist);
    const auto vhdl_lines =
        std::count(vhdl.begin(), vhdl.end(), '\n');

    const std::size_t mism = equivalence_mismatches(n, p, gen, 6);
    table.add_row({std::to_string(n), std::to_string(p),
                   std::to_string(gen.isa.k()), std::to_string(ffs),
                   std::to_string(comb), std::to_string(tri),
                   std::to_string(probe.depth()),
                   std::to_string(vhdl_lines),
                   mism == 0 ? "OK" : ("MISMATCH x" + std::to_string(mism))});

    const JsonReporter::Params pt = {{"n", std::to_string(n)},
                                     {"p", std::to_string(p)}};
    rep.record("cas_internals", pt, "k", std::uint64_t{gen.isa.k()});
    rep.record("cas_internals", pt, "ir_ffs", std::uint64_t{ffs});
    rep.record("cas_internals", pt, "decode_switch_cells",
               std::uint64_t{comb});
    rep.record("cas_internals", pt, "tristates", std::uint64_t{tri});
    rep.record("cas_internals", pt, "depth", std::uint64_t{probe.depth()});
    rep.record("cas_internals", pt, "vhdl_lines",
               static_cast<std::uint64_t>(vhdl_lines));
    rep.record("cas_internals", pt, "equivalence_mismatches",
               std::uint64_t{mism});
  }
  table.print(std::cout);
  std::cout << "\nIR FFs = 2k (shift + update stages, Fig. 3); tri-states "
               "are the o-port drivers; equivalence re-checks behavioral "
               "vs generated hardware on random sessions.\n";
  return 0;
}
